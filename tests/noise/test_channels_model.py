"""Tests for noise channels, readout errors and the noise model."""

import math

import numpy as np
import pytest

from repro.circuits.gates import CXGate, U3Gate
from repro.circuits.instruction import Instruction
from repro.noise import (
    NoiseModel,
    QuantumChannel,
    ReadoutError,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    phase_damping,
    phase_flip,
    tensor_channel,
    thermal_relaxation,
)


def _is_cptp(channel):
    dim = 2 ** channel.num_qubits
    total = sum(
        op.conj().T @ op for op in channel.kraus_operators
    )
    return np.allclose(total, np.eye(dim), atol=1e-8)


class TestStandardChannels:
    @pytest.mark.parametrize("factory,p", [
        (bit_flip, 0.1),
        (phase_flip, 0.2),
        (bit_phase_flip, 0.05),
        (amplitude_damping, 0.3),
        (phase_damping, 0.15),
    ])
    def test_cptp(self, factory, p):
        assert _is_cptp(factory(p))

    def test_depolarizing_cptp_multi_qubit(self):
        assert _is_cptp(depolarizing(0.1, 1))
        assert _is_cptp(depolarizing(0.2, 2))

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            bit_flip(1.5)
        with pytest.raises(ValueError):
            bit_flip(-0.1)

    def test_bit_flip_action_on_density(self):
        """Exact channel action: rho' = (1-p) rho + p X rho X."""
        channel = bit_flip(0.25)
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        out = sum(
            k @ rho @ k.conj().T for k in channel.kraus_operators
        )
        assert np.allclose(out, [[0.75, 0], [0, 0.25]])

    def test_depolarizing_full_mixes(self):
        channel = depolarizing(1.0)
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        out = sum(
            k @ rho @ k.conj().T for k in channel.kraus_operators
        )
        assert np.allclose(out, np.eye(2) / 2)

    def test_amplitude_damping_decays_excited(self):
        channel = amplitude_damping(0.4)
        rho = np.array([[0, 0], [0, 1]], dtype=complex)
        out = sum(
            k @ rho @ k.conj().T for k in channel.kraus_operators
        )
        assert out[0, 0] == pytest.approx(0.4)
        assert out[1, 1] == pytest.approx(0.6)

    def test_mixed_unitary_detection(self):
        assert bit_flip(0.1).mixed_unitary_probs == pytest.approx([0.9, 0.1])
        assert depolarizing(0.2, 2).mixed_unitary_probs is not None
        assert amplitude_damping(0.3).mixed_unitary_probs is None

    def test_thermal_relaxation_cptp(self):
        assert _is_cptp(thermal_relaxation(100.0, 80.0, 0.5))

    def test_thermal_relaxation_limits(self):
        """At long gate times the excited population fully decays."""
        channel = thermal_relaxation(1.0, 1.0, 1000.0)
        rho = np.array([[0, 0], [0, 1]], dtype=complex)
        out = sum(
            k @ rho @ k.conj().T for k in channel.kraus_operators
        )
        assert out[0, 0] == pytest.approx(1.0, abs=1e-6)

    def test_thermal_relaxation_physicality(self):
        with pytest.raises(ValueError):
            thermal_relaxation(10.0, 30.0, 0.1)  # T2 > 2 T1
        with pytest.raises(ValueError):
            thermal_relaxation(-1.0, 1.0, 0.1)

    def test_compose(self):
        composed = bit_flip(0.1).compose(phase_flip(0.1))
        assert _is_cptp(composed)
        assert len(composed.kraus_operators) == 4

    def test_tensor_channel(self):
        pair = tensor_channel(bit_flip(0.1), phase_flip(0.2))
        assert pair.num_qubits == 2
        assert _is_cptp(pair)

    def test_invalid_kraus_rejected(self):
        with pytest.raises(ValueError):
            QuantumChannel([np.eye(2) * 2])
        with pytest.raises(ValueError):
            QuantumChannel([])

    def test_unital_check(self):
        assert bit_flip(0.3).is_unital()
        assert not amplitude_damping(0.3).is_unital()


class TestReadoutError:
    def test_flip_probabilities(self):
        error = ReadoutError(0.1, 0.2)
        assert error.flip_probability(0) == 0.1
        assert error.flip_probability(1) == 0.2
        assert error.average_error() == pytest.approx(0.15)

    def test_assignment_matrix_stochastic(self):
        matrix = ReadoutError(0.1, 0.2).assignment_matrix()
        assert np.allclose(matrix.sum(axis=0), [1.0, 1.0])

    def test_apply_statistics(self):
        error = ReadoutError(0.5, 0.0)
        rng = np.random.default_rng(0)
        flips = sum(error.apply(0, rng) for _ in range(2000))
        assert flips == pytest.approx(1000, abs=100)


class TestNoiseModel:
    def test_all_qubit_binding(self):
        model = NoiseModel().add_all_qubit_quantum_error(
            bit_flip(0.1), ["x"]
        )
        inst = Instruction(U3Gate([1, 2, 3]), (0,))
        assert model.errors_for(inst) == []
        from repro.circuits.gates import XGate

        bound = model.errors_for(Instruction(XGate(), (4,)))
        assert len(bound) == 1
        assert bound[0].resolve(Instruction(XGate(), (4,))) == (4,)

    def test_qubit_specific_binding(self):
        model = NoiseModel().add_quantum_error(
            depolarizing(0.1, 2), ["cx"], [1, 2]
        )
        hit = Instruction(CXGate(), (1, 2))
        miss = Instruction(CXGate(), (2, 1))
        assert len(model.errors_for(hit)) == 1
        assert model.errors_for(miss) == []

    def test_slot_binding(self):
        model = NoiseModel().add_quantum_error(
            amplitude_damping(0.2), ["cx"], [0, 1], slots=[1]
        )
        inst = Instruction(CXGate(), (0, 1))
        bound = model.errors_for(inst)
        assert len(bound) == 1
        assert bound[0].resolve(inst) == (1,)

    def test_one_qubit_channel_fans_out(self):
        model = NoiseModel().add_all_qubit_quantum_error(
            bit_flip(0.1), ["cx"]
        )
        bound = model.errors_for(Instruction(CXGate(), (0, 1)))
        assert len(bound) == 2

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel().add_quantum_error(
                depolarizing(0.1, 2), ["x"], [0]
            )

    def test_readout_registry(self):
        model = NoiseModel().add_readout_error(ReadoutError(0.1, 0.1), 3)
        assert model.readout_error(3) is not None
        assert model.readout_error(0) is None
        assert model.has_readout_errors()

    def test_trivial(self):
        assert NoiseModel().is_trivial()
        assert not NoiseModel().add_readout_error(
            ReadoutError(0.1, 0.1), 0
        ).is_trivial()
