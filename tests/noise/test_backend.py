"""Tests for device backends (FakeValencia and widenings)."""

import pytest

from repro.circuits.gates import CXGate, U3Gate
from repro.circuits.instruction import Instruction
from repro.noise import (
    Backend,
    GateCalibration,
    QubitCalibration,
    VALENCIA_BASIS_GATES,
    VALENCIA_COUPLING,
    fake_valencia,
    valencia_like_backend,
)


class TestFakeValencia:
    def test_topology(self):
        backend = fake_valencia()
        assert backend.num_qubits == 5
        assert backend.coupling_edges == VALENCIA_COUPLING
        assert backend.basis_gates == VALENCIA_BASIS_GATES

    def test_symmetric_edges(self):
        backend = fake_valencia()
        edges = backend.symmetric_edges()
        assert (0, 1) in edges and (1, 0) in edges
        assert len(edges) == 8

    def test_cx_error_lookup_both_directions(self):
        backend = fake_valencia()
        assert backend.cx_error(0, 1) == backend.cx_error(1, 0)
        with pytest.raises(KeyError):
            backend.cx_error(0, 4)

    def test_noise_model_covers_gates(self):
        model = fake_valencia().noise_model()
        names = model.noisy_gate_names
        assert "cx" in names
        assert "u3" in names

    def test_noise_model_binds_per_qubit(self):
        model = fake_valencia().noise_model()
        sq = model.errors_for(Instruction(U3Gate([1, 2, 3]), (2,)))
        assert len(sq) == 1
        cx = model.errors_for(Instruction(CXGate(), (0, 1)))
        # depolarizing pair + relax control + relax target
        assert len(cx) == 3

    def test_noise_model_has_readout_everywhere(self):
        model = fake_valencia().noise_model()
        for q in range(5):
            assert model.readout_error(q) is not None


class TestValenciaLike:
    def test_exact_five_returns_valencia(self):
        assert valencia_like_backend(5).coupling_edges == VALENCIA_COUPLING

    def test_truncation_below_five(self):
        backend = valencia_like_backend(3)
        assert backend.num_qubits == 3
        assert all(a < 3 and b < 3 for a, b in backend.coupling_edges)

    def test_widening_is_connected_line(self):
        backend = valencia_like_backend(12)
        assert backend.num_qubits == 12
        assert backend.coupling_edges == [(q, q + 1) for q in range(11)]
        assert len(backend.qubits) == 12

    def test_widened_noise_model_builds(self):
        model = valencia_like_backend(8).noise_model()
        assert model.readout_error(7) is not None
        assert "cx" in model.noisy_gate_names


class TestBackendValidation:
    def test_calibration_length_checked(self):
        with pytest.raises(ValueError):
            Backend(
                name="bad",
                num_qubits=2,
                coupling_edges=[(0, 1)],
                basis_gates=["cx"],
                qubits=[QubitCalibration(100, 80, 0.01, 0.02)],
            )

    def test_edge_range_checked(self):
        with pytest.raises(ValueError):
            Backend(
                name="bad",
                num_qubits=2,
                coupling_edges=[(0, 5)],
                basis_gates=["cx"],
                qubits=[
                    QubitCalibration(100, 80, 0.01, 0.02)
                    for _ in range(2)
                ],
            )

    def test_gate_calibration_dataclass(self):
        cal = GateCalibration(error=0.01, duration_us=0.4)
        assert cal.error == 0.01
