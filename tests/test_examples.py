"""The example scripts run end to end (they double as integration tests)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, argv=None) -> None:
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + list(argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "Accuracy after de-obfuscation" in out
    accuracy = float(out.rsplit(":", 1)[1])
    assert accuracy > 0.4


def test_interlocking_patterns_runs(capsys):
    _run("interlocking_patterns.py")
    out = capsys.readouterr().out
    assert "restores the original exactly: True" in out
    assert "Pattern A" in out


def test_colluding_attack_runs(capsys):
    _run("colluding_attack.py")
    out = capsys.readouterr().out
    assert "attack SUCCEEDS" in out
    assert "corrupted: True" in out


def test_grover_protection_runs(capsys):
    _run("grover_protection.py")
    out = capsys.readouterr().out
    assert "P(101) restored" in out
    restored = float(out.rsplit(":", 1)[1])
    assert restored > 0.7


@pytest.mark.slow
def test_revlib_protection_runs(capsys):
    _run("revlib_protection.py", argv=["4gt13"])
    out = capsys.readouterr().out
    assert "4gt13" in out
    assert "Shape checks" in out
