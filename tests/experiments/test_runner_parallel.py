"""Parallel suite mode: jobs-independent, bit-identical aggregates."""

import numpy as np
import pytest

from repro.experiments.runner import run_benchmark, run_suite
from repro.revlib.benchmarks import load_benchmark


def _records():
    return [load_benchmark("4gt13"), load_benchmark("one_bit_adder")]


def _fingerprint(results):
    """Every per-iteration histogram and metric, in deterministic order."""
    out = []
    for name in sorted(results):
        for it in results[name].iterations:
            out.append(
                (
                    name,
                    sorted(it.counts_original.items()),
                    sorted(it.counts_obfuscated.items()),
                    sorted(it.counts_restored.items()),
                    it.expected_bitstring,
                    it.inserted_gates,
                )
            )
    return out


class TestParallelSuite:
    def test_jobs_do_not_change_results(self):
        sequential = run_suite(
            _records(), iterations=2, shots=150, seed=13, jobs=1
        )
        parallel = run_suite(
            _records(), iterations=2, shots=150, seed=13, jobs=2
        )
        assert _fingerprint(sequential) == _fingerprint(parallel)

    def test_fixed_seed_is_reproducible(self):
        one = run_suite(_records()[:1], iterations=2, shots=100, seed=3)
        two = run_suite(_records()[:1], iterations=2, shots=100, seed=3)
        assert _fingerprint(one) == _fingerprint(two)

    def test_different_seeds_differ(self):
        one = run_suite(_records()[:1], iterations=2, shots=100, seed=3)
        two = run_suite(_records()[:1], iterations=2, shots=100, seed=4)
        assert _fingerprint(one) != _fingerprint(two)

    def test_iteration_count_and_names(self):
        results = run_suite(
            _records(), iterations=3, shots=50, seed=1, jobs=2
        )
        assert set(results) == {"4gt13", "one_bit_adder"}
        for aggregate in results.values():
            assert len(aggregate.iterations) == 3

    def test_run_benchmark_delegates(self):
        record = _records()[0]
        aggregate = run_benchmark(
            record, iterations=2, shots=100, seed=9, jobs=2
        )
        assert aggregate.name == "4gt13"
        assert len(aggregate.iterations) == 2
        # matches the suite path with the same parameters
        via_suite = run_suite(
            [record], iterations=2, shots=100, seed=9, jobs=1
        )["4gt13"]
        assert _fingerprint({"4gt13": aggregate}) == _fingerprint(
            {"4gt13": via_suite}
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            run_suite(_records(), iterations=0)
        with pytest.raises(ValueError):
            run_suite(_records(), jobs=0)


class TestCompilationKnobs:
    """split_jobs and the transpile cache never change any result."""

    def test_split_jobs_do_not_change_results(self):
        baseline = run_suite(
            _records(), iterations=2, shots=100, seed=21, split_jobs=1
        )
        pipelined = run_suite(
            _records(), iterations=2, shots=100, seed=21, split_jobs=2
        )
        assert _fingerprint(baseline) == _fingerprint(pipelined)

    def test_transpile_cache_does_not_change_results(self):
        from repro.transpiler import get_transpile_cache

        get_transpile_cache().clear()
        cached = run_suite(
            _records(), iterations=2, shots=100, seed=21,
            transpile_cache=True,
        )
        assert get_transpile_cache().stats().hits > 0
        uncached = run_suite(
            _records(), iterations=2, shots=100, seed=21,
            transpile_cache=False,
        )
        assert _fingerprint(cached) == _fingerprint(uncached)
