"""The attack_bruteforce spec: grid shape, determinism, checkpointing."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.attack_bruteforce import (
    AttackRow,
    render_attack_bruteforce,
    run_attack_cell,
)
from repro.experiments.framework import ResultStore, get_spec


TINY = {
    "benchmarks": ["4gt13"],
    "split_seeds": [0],
}


class TestRunAttackCell:
    def test_same_width_cell(self):
        row = run_attack_cell("same-width", "4gt13", 1)
        assert row.adversary == "same-width"
        assert row.widths == (4, 4)
        assert not row.mismatched
        assert row.search_space == 24
        assert row.success
        assert row.first_match is not None

    def test_mismatched_cell_executes_eq1_search(self):
        row = run_attack_cell("mismatched", "4gt13", 0)
        assert row.adversary == "mismatched"
        assert row.search_space > 1
        assert row.candidates_tried + row.pruned == row.search_space
        assert row.success

    def test_no_prefilter_tries_full_space(self):
        row = run_attack_cell("mismatched", "4gt13", 0, prefilter=False)
        assert row.pruned == 0
        assert row.candidates_tried == row.search_space

    def test_unknown_adversary_rejected(self):
        with pytest.raises(ValueError, match="unknown adversary"):
            run_attack_cell("quantum-telepathy", "4gt13", 0)


class TestSpec:
    def test_registered(self):
        spec = get_spec("attack_bruteforce")
        assert not spec.seeded
        cells = spec.make_cells(spec.config())
        # benchmark x seed x adversary, ids unique
        assert len(cells) == 2 * 3 * 2
        assert len({cell.id for cell in cells}) == len(cells)

    def test_run_and_render(self):
        report = run_experiment("attack_bruteforce", TINY)
        assert report.complete
        rows = report.result["rows"]
        assert [row.adversary for row in rows] == [
            "same-width", "mismatched"
        ]
        assert all(isinstance(row, AttackRow) for row in rows)
        text = render_attack_bruteforce(report.result)
        assert "adversary" in text
        assert "recover the original function" in text

    def test_checkpoint_and_resume_reuse(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        first = run_experiment("attack_bruteforce", TINY, store=store)
        assert first.computed == 2
        second = run_experiment(
            "attack_bruteforce", TINY, store=store, resume=True
        )
        assert second.reused == 2
        assert second.computed == 0
        assert second.result["rows"] == first.result["rows"]

    def test_jobs_bit_identical(self):
        sequential = run_experiment("attack_bruteforce", TINY)
        parallel = run_experiment("attack_bruteforce", TINY, jobs=2)
        assert sequential.result["rows"] == parallel.result["rows"]
