"""Smoke + shape tests for the experiment harnesses (tiny parameters)."""

import pytest

from repro.experiments import (
    demo_bruteforce_attack,
    generate_complexity_table,
    generate_figure4,
    generate_table1,
    render_ablation,
    render_complexity_table,
    render_figure4,
    render_table1,
    run_ablation,
)


@pytest.fixture(scope="module")
def small_results():
    return generate_table1(
        iterations=2,
        shots=200,
        seed=77,
        benchmarks=["4gt13", "one_bit_adder"],
    )


class TestTable1:
    def test_rows_present(self, small_results):
        assert set(small_results) == {"4gt13", "one_bit_adder"}

    def test_depth_preserved_everywhere(self, small_results):
        for aggregate in small_results.values():
            assert aggregate.depth_always_preserved
            assert aggregate.depth == aggregate.depth_obfuscated

    def test_gate_increase_in_paper_band(self, small_results):
        """1-4 inserted gates -> bounded relative increase."""
        for aggregate in small_results.values():
            assert 0 < aggregate.gates_obfuscated - aggregate.gates <= 4

    def test_accuracy_sane(self, small_results):
        for aggregate in small_results.values():
            assert 0.5 < aggregate.accuracy <= 1.0
            assert aggregate.accuracy_change_pct < 20.0

    def test_render(self, small_results):
        text = render_table1(small_results)
        assert "4gt13" in text
        assert "(paper)" in text
        assert "Gate+%" in text


class TestFigure4:
    def test_series_shapes(self, small_results):
        figure = generate_figure4(results=small_results)
        for name, series in figure.items():
            obf = series["obfuscated"]
            restored = series["restored"]
            assert len(obf.values) == 2
            # the paper's headline shape: obfuscated >> restored
            assert obf.median > restored.median
            assert 0.0 <= restored.median < 0.5

    def test_render(self, small_results):
        figure = generate_figure4(results=small_results)
        text = render_figure4(figure)
        assert "obfuscated" in text and "restored" in text
        assert "med=" in text

    def test_ascii_box_bounds(self, small_results):
        figure = generate_figure4(results=small_results)
        box = figure["4gt13"]["obfuscated"].ascii_box(20)
        assert len(box) == 20
        assert "#" in box


class TestAttackComplexityHarness:
    def test_table_rows(self):
        rows = generate_complexity_table(
            qubit_counts=(4, 5), nmax_values=(5, 27), k=2
        )
        assert len(rows) == 4
        for row in rows:
            assert row.tetrislock > row.saki
            assert row.ratio > 1.0

    def test_render(self):
        rows = generate_complexity_table(qubit_counts=(4,), nmax_values=(5,))
        assert "Saki" in render_complexity_table(rows)

    def test_bruteforce_demo_succeeds(self):
        demo = demo_bruteforce_attack("4gt13", seed=3)
        assert demo.success
        assert demo.candidates == 24


class TestAblationHarness:
    def test_rows_and_shape(self):
        rows = run_ablation(iterations=2, seed=1)
        schemes = {row.scheme for row in rows}
        assert schemes == {"tetrislock", "das-front", "das-middle"}
        tetris = [r for r in rows if r.scheme == "tetrislock"]
        das = [r for r in rows if r.scheme != "tetrislock"]
        # headline ablation shape: TetrisLock never grows depth,
        # block insertion almost always does
        assert all(r.depth_overhead == 0.0 for r in tetris)
        assert sum(r.depth_overhead for r in das) > 0
        assert all(not r.needs_trusted_compiler for r in tetris)
        assert all(r.needs_trusted_compiler for r in das)

    def test_render(self):
        rows = run_ablation(iterations=1, seed=2)
        text = render_ablation(rows)
        assert "tetrislock" in text
