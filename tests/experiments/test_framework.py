"""Unified experiment framework: registry, store, resume, sharding."""

import json

import numpy as np
import pytest

from repro.experiments.framework import (
    Cell,
    ExperimentSpec,
    ResultStore,
    config_hash,
    get_spec,
    list_specs,
    parse_shard,
    register,
    run_experiment,
    unregister,
)

BUILTIN_SPECS = {
    "table1",
    "figure4",
    "sweep_gate_limit",
    "ablation_insertion",
    "attack_complexity",
}


# ---------------------------------------------------------------------------
# a tiny deterministic spec for fast framework-behaviour tests
# ---------------------------------------------------------------------------

def _toy_cells(config):
    return [
        Cell(f"x{i}", {"i": i}) for i in range(int(config["n"]))
    ]


def _toy_task(config, cell, seed, options):
    if config.get("bomb_file"):
        import os

        if os.path.exists(config["bomb_file"]) and cell.params["i"] >= 3:
            raise RuntimeError("simulated crash")
    draw = int(np.random.default_rng(seed).integers(0, 1_000_000))
    return {"i": cell.params["i"], "draw": draw,
            "scaled": cell.params["i"] * int(config["factor"])}


def _toy_aggregate(config, results):
    cells = _toy_cells(config)
    return [results[cell.id] for cell in cells]


@pytest.fixture()
def toy_spec():
    spec = register(
        ExperimentSpec(
            name="_toy",
            description="framework test spec",
            defaults={"n": 6, "factor": 2, "seed": 0, "bomb_file": None},
            make_cells=_toy_cells,
            task=_toy_task,
            aggregate=_toy_aggregate,
            render=lambda rows: json.dumps(rows),
        )
    )
    yield spec
    unregister("_toy")


class TestRegistry:
    def test_builtin_specs_registered(self):
        names = {spec.name for spec in list_specs()}
        assert BUILTIN_SPECS <= names

    def test_get_spec_unknown_name(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_spec("no_such_experiment")

    def test_config_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            get_spec("table1").config({"iterationz": 3})

    def test_config_merges_defaults(self):
        config = get_spec("table1").config({"iterations": 3})
        assert config["iterations"] == 3
        assert config["shots"] == 1000


class TestConfigHash:
    def test_stable_across_key_order(self):
        a = {"iterations": 2, "shots": 100, "seed": 1}
        b = {"seed": 1, "iterations": 2, "shots": 100}
        assert config_hash(a) == config_hash(b)

    def test_changes_with_values(self):
        base = {"iterations": 2, "shots": 100}
        assert config_hash(base) != config_hash(
            {"iterations": 3, "shots": 100}
        )

    def test_tuple_and_list_spellings_agree(self):
        assert config_hash({"grid": (1, 2)}) == config_hash({"grid": [1, 2]})

    def test_execution_knobs_share_a_run_file(self, toy_spec, tmp_path):
        """jobs/split_jobs/shard never enter the checkpoint identity."""
        store = ResultStore(tmp_path)
        one = run_experiment("_toy", store=store)
        two = run_experiment(
            "_toy", jobs=2, split_jobs=2, transpile_cache=False,
            resume=True, store=store,
        )
        assert one.config_hash == two.config_hash
        assert two.reused == one.total_cells and two.computed == 0


class TestResume:
    def test_fresh_then_resume_recomputes_nothing(self, toy_spec, tmp_path):
        store = ResultStore(tmp_path)
        fresh = run_experiment("_toy", store=store)
        assert fresh.computed == 6 and fresh.reused == 0 and fresh.complete
        resumed = run_experiment("_toy", resume=True, store=store)
        assert resumed.computed == 0 and resumed.reused == 6
        assert resumed.result == fresh.result

    def test_killed_run_resumes_where_it_stopped(self, toy_spec, tmp_path):
        """Crash mid-run; rerun resumes with zero recomputation."""
        store = ResultStore(tmp_path)
        bomb = tmp_path / "bomb"
        bomb.touch()
        config = {"bomb_file": str(bomb)}
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_experiment("_toy", config, store=store)
        checkpointed = store.load("_toy", config_hash(toy_spec.config(config)))
        assert set(checkpointed) == {"x0", "x1", "x2"}

        bomb.unlink()  # "fix" the crash, rerun with --resume
        resumed = run_experiment("_toy", config, resume=True, store=store)
        assert resumed.reused == 3 and resumed.computed == 3
        fresh = run_experiment("_toy", config)
        assert resumed.result == fresh.result

    def test_non_resume_run_starts_fresh(self, toy_spec, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment("_toy", store=store)
        again = run_experiment("_toy", store=store)
        assert again.reused == 0 and again.computed == 6

    def test_torn_final_line_is_skipped(self, toy_spec, tmp_path):
        store = ResultStore(tmp_path)
        report = run_experiment("_toy", store=store)
        path = store.run_path("_toy", report.config_hash)
        path.write_text(path.read_text()[:-25])  # torn mid-record write
        resumed = run_experiment("_toy", resume=True, store=store)
        assert resumed.reused == 5 and resumed.computed == 1
        assert resumed.result == report.result

    def test_stale_cells_of_other_grids_ignored(self, toy_spec, tmp_path):
        """Cells outside the current grid never leak into aggregates."""
        store = ResultStore(tmp_path)
        report = run_experiment("_toy", store=store)
        store.append("_toy", report.config_hash, "x999", {"i": 999})
        resumed = run_experiment("_toy", resume=True, store=store)
        assert resumed.result == report.result


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard(None) is None
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("2/3") == (2, 3)
        for bad in ("2/2", "-1/2", "0/0", "x/y", "3"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shard_union_equals_full_grid(self, toy_spec, tmp_path):
        store = ResultStore(tmp_path)
        partials = [
            run_experiment("_toy", shard=(i, 3), store=store)
            for i in range(3)
        ]
        assert [p.computed for p in partials] == [2, 2, 2]
        assert partials[-1].complete
        full = run_experiment("_toy")
        assert partials[-1].result == full.result

    def test_rerunning_a_shard_reuses_its_cells(self, toy_spec, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment("_toy", shard=(0, 2), store=store)
        again = run_experiment("_toy", shard=(0, 2), store=store)
        assert again.computed == 0 and again.reused == 3


class TestStore:
    def test_header_and_listing(self, toy_spec, tmp_path):
        store = ResultStore(tmp_path)
        report = run_experiment("_toy", store=store)
        header = store.load_header("_toy", report.config_hash)
        assert header["spec"] == "_toy"
        assert header["config"]["n"] == 6
        runs = list(store.runs())
        assert runs == [("_toy", report.config_hash,
                         store.run_path("_toy", report.config_hash))]

    def test_duplicate_cells_last_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.begin("s", "h", {})
        store.append("s", "h", "a", 1)
        store.append("s", "h", "a", 2)
        assert store.load("s", "h") == {"a": 2}

    def test_load_missing_run(self, tmp_path):
        assert ResultStore(tmp_path).load("s", "h") == {}


class TestInvalidArguments:
    def test_jobs_must_be_positive(self, toy_spec):
        with pytest.raises(ValueError):
            run_experiment("_toy", jobs=0)

    def test_duplicate_cell_ids_rejected(self):
        spec = register(
            ExperimentSpec(
                name="_dup",
                description="duplicate cells",
                defaults={},
                make_cells=lambda config: [Cell("a"), Cell("a")],
                task=lambda config, cell, seed, options: 0,
                aggregate=lambda config, results: results,
                render=str,
            )
        )
        try:
            with pytest.raises(ValueError, match="duplicate cell ids"):
                run_experiment("_dup")
        finally:
            unregister("_dup")


class TestRealSpecsRoundTrip:
    """encode/decode round-trips are exact for the built-in specs."""

    def test_table1_cell_round_trip(self):
        spec = get_spec("table1")
        config = spec.config({"iterations": 1, "shots": 100,
                              "seed": 5, "benchmarks": ["4gt13"]})
        cells = spec.make_cells(config)
        assert [cell.id for cell in cells] == ["4gt13/0"]
        seed = np.random.SeedSequence(5).spawn(1)[0]
        from repro.experiments.framework.spec import ExecOptions

        result = spec.task(config, cells[0], seed, ExecOptions())
        decoded = spec.decode(json.loads(json.dumps(spec.encode(result))))
        assert decoded.counts_original == result.counts_original
        assert decoded.counts_obfuscated == result.counts_obfuscated
        assert decoded.counts_restored == result.counts_restored
        assert decoded.counts_original.shots == result.counts_original.shots
        assert decoded.expected_bitstring == result.expected_bitstring
        assert decoded.split_qubits == result.split_qubits
        assert decoded.accuracy_original == result.accuracy_original
        assert decoded.tvd_obfuscated == result.tvd_obfuscated

    def test_table1_resume_aggregates_bit_identical(self, tmp_path):
        """Interrupt-free framework guarantee on a real (tiny) grid."""
        config = {"iterations": 2, "shots": 100, "seed": 21,
                  "benchmarks": ["4gt13"]}
        store = ResultStore(tmp_path)
        # shard 0/2 plays the role of the interrupted half-finished run
        partial = run_experiment("table1", config, shard=(0, 2), store=store)
        assert not partial.complete
        resumed = run_experiment("table1", config, resume=True, store=store)
        assert resumed.reused == partial.computed
        fresh = run_experiment("table1", config)
        key = "4gt13"
        resumed_iters = resumed.result[key].iterations
        fresh_iters = fresh.result[key].iterations
        assert [it.counts_restored for it in resumed_iters] == [
            it.counts_restored for it in fresh_iters
        ]
        assert resumed.result[key].accuracy == fresh.result[key].accuracy
        assert (
            resumed.result[key].tvd_obfuscated_values
            == fresh.result[key].tvd_obfuscated_values
        )

    def test_sweep_cell_round_trip(self):
        spec = get_spec("sweep_gate_limit")
        config = spec.config({"benchmarks": ["4gt13"], "gate_limits": [2],
                              "iterations": 2, "shots": 64, "seed": 3})
        cells = spec.make_cells(config)
        seed = np.random.SeedSequence(3).spawn(1)[0]
        from repro.experiments.framework.spec import ExecOptions

        point = spec.task(config, cells[0], seed, ExecOptions())
        decoded = spec.decode(json.loads(json.dumps(spec.encode(point))))
        assert decoded == point  # float repr round-trip is exact


class TestSharedStore:
    """figure4 is a view over table1's grid: one checkpoint, two specs."""

    CONFIG = {"iterations": 1, "shots": 64, "seed": 9,
              "benchmarks": ["4gt13"]}

    def test_figure4_reuses_table1_checkpoints(self, tmp_path):
        store = ResultStore(tmp_path)
        table = run_experiment("table1", self.CONFIG, store=store)
        assert table.computed == 1
        figure = run_experiment("figure4", self.CONFIG, store=store)
        assert figure.computed == 0 and figure.reused == 1
        assert figure.store_path == table.store_path
        assert figure.result["4gt13"]["obfuscated"].values == (
            table.result["4gt13"].tvd_obfuscated_values
        )

    def test_figure4_run_feeds_table1(self, tmp_path):
        store = ResultStore(tmp_path)
        figure = run_experiment("figure4", self.CONFIG, store=store)
        assert figure.computed == 1
        table = run_experiment(
            "table1", self.CONFIG, resume=True, store=store
        )
        assert table.computed == 0 and table.reused == 1


class TestBenchmarkValidation:
    def test_unknown_benchmark_rejected(self):
        for spec_name in ("table1", "figure4", "sweep_gate_limit",
                          "ablation_insertion"):
            spec = get_spec(spec_name)
            with pytest.raises(ValueError, match="unknown benchmark"):
                spec.make_cells(spec.config({"benchmarks": ["nope"]}))


class TestKnobUniformity:
    """jobs / split_jobs / transpile_cache exist on every harness."""

    def test_sweep_jobs_bit_identical(self):
        from repro.experiments import run_gate_limit_sweep

        kwargs = dict(benchmarks=["4gt13"], gate_limits=(0, 2),
                      iterations=2, shots=64, seed=7)
        assert run_gate_limit_sweep(**kwargs) == run_gate_limit_sweep(
            **kwargs, jobs=2
        )

    def test_ablation_jobs_bit_identical(self):
        from repro.experiments import run_ablation

        kwargs = dict(iterations=2, seed=5, benchmarks=["4gt13", "4mod5"])
        assert run_ablation(**kwargs) == run_ablation(**kwargs, jobs=2)

    def test_ablation_knobs_accepted(self):
        from repro.experiments import run_ablation

        rows = run_ablation(iterations=1, seed=5, benchmarks=["4gt13"],
                            split_jobs=2, transpile_cache=False)
        assert {row.scheme for row in rows} == {
            "tetrislock", "das-front", "das-middle"
        }
