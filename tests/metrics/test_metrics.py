"""Tests for TVD (Eq. 2), accuracy, fidelity and overhead metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.metrics import (
    OverheadReport,
    accuracy,
    compare_circuits,
    hellinger_distance,
    hellinger_fidelity,
    reference_distribution,
    tvd,
    tvd_counts,
    tvd_to_reference,
)


class TestTvd:
    def test_identical_distributions(self):
        assert tvd({"0": 0.5, "1": 0.5}, {"0": 0.5, "1": 0.5}) == 0.0

    def test_disjoint_distributions(self):
        assert tvd({"0": 1.0}, {"1": 1.0}) == pytest.approx(1.0)

    def test_counts_form_matches_eq2(self):
        """Eq. 2: sum |y_orig - y_alter| / (2 N)."""
        a = {"00": 95, "01": 5}
        b = {"00": 80, "01": 15, "11": 5}
        expected = (abs(95 - 80) + abs(5 - 15) + abs(0 - 5)) / (2 * 100)
        assert tvd_counts(a, b) == pytest.approx(expected)

    def test_counts_with_explicit_shots(self):
        assert tvd_counts({"0": 50}, {"1": 50}, shots=50) == pytest.approx(1.0)

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            tvd_counts({}, {"0": 1})

    def test_declared_shots_honoured(self):
        """Counts.shots (declared) wins over re-summing the values.

        A histogram from a partially-recorded run declares the true
        shot count; its probabilities must match Counts.probabilities.
        """
        from repro.simulator import Counts

        partial = Counts({"0": 40}, shots=100)  # 60 shots unrecorded
        full = Counts({"0": 40, "1": 60})
        # P(partial) = {0: 0.4}; P(full) = {0: 0.4, 1: 0.6}
        assert tvd_counts(partial, full) == pytest.approx(0.3)
        assert tvd_counts(partial, partial) == pytest.approx(0.0)
        # consistent with the probability view
        assert tvd(
            partial.probabilities(), full.probabilities()
        ) == pytest.approx(tvd_counts(partial, full))

    def test_declared_shots_in_reference_tvd(self):
        from repro.simulator import Counts

        partial = Counts({"0": 40}, shots=100)
        assert tvd_to_reference(partial, "0") == pytest.approx(0.6)

    def test_plain_dicts_still_resum(self):
        assert tvd_counts({"0": 40}, {"0": 40}) == pytest.approx(0.0)

    def test_reference_distribution(self):
        assert reference_distribution("010") == {"010": 1.0}

    def test_tvd_to_reference_equals_one_minus_accuracy(self):
        counts = {"00": 80, "01": 15, "11": 5}
        assert tvd_to_reference(counts, "00") == pytest.approx(0.2)
        assert tvd_to_reference(counts, "10") == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.integers(0, 100), b=st.integers(0, 100), c=st.integers(0, 100)
    )
    def test_tvd_is_a_metric(self, a, b, c):
        """Property: symmetry, identity and triangle inequality."""
        total = a + b + c
        if total == 0:
            return
        p = {"00": a / total, "01": b / total, "10": c / total}
        q = {"00": c / total, "01": a / total, "10": b / total}
        r = {"00": b / total, "01": c / total, "10": a / total}
        assert tvd(p, p) == pytest.approx(0.0)
        assert tvd(p, q) == pytest.approx(tvd(q, p))
        assert tvd(p, r) <= tvd(p, q) + tvd(q, r) + 1e-12
        assert 0.0 <= tvd(p, q) <= 1.0 + 1e-12


class TestAccuracyAndFidelity:
    def test_accuracy(self):
        assert accuracy({"11": 900, "00": 100}, "11") == pytest.approx(0.9)
        assert accuracy({"11": 900}, "00") == 0.0

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy({}, "0")

    def test_hellinger_identical(self):
        counts = {"0": 30, "1": 70}
        assert hellinger_distance(counts, counts) == pytest.approx(0.0)
        assert hellinger_fidelity(counts, counts) == pytest.approx(1.0)

    def test_hellinger_disjoint(self):
        assert hellinger_distance({"0": 10}, {"1": 10}) == pytest.approx(1.0)
        assert hellinger_fidelity({"0": 10}, {"1": 10}) == pytest.approx(0.0)

    def test_hellinger_bounds(self):
        d = hellinger_distance({"0": 5, "1": 5}, {"0": 9, "1": 1})
        assert 0.0 < d < 1.0


class TestOverhead:
    def test_report_from_circuits(self):
        original = QuantumCircuit(2)
        original.x(0).cx(0, 1)
        modified = original.copy()
        modified.x(1)
        report = compare_circuits(original, modified)
        assert report.gate_increase == 1
        assert report.gate_increase_pct == pytest.approx(50.0)

    def test_depth_preservation_flag(self):
        report = OverheadReport(5, 5, 10, 12)
        assert report.preserves_depth()
        assert report.depth_increase == 0
        assert OverheadReport(5, 6, 10, 12).preserves_depth() is False

    def test_zero_baselines(self):
        report = OverheadReport(0, 0, 0, 0)
        assert report.depth_increase_pct == 0.0
        assert report.gate_increase_pct == 0.0
