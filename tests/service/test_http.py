"""The HTTP/JSON front-end and its urllib client."""

import threading

import pytest

from repro.service import HTTPServiceClient, JobService, ServiceError
from repro.service.http import make_server


@pytest.fixture()
def http_client():
    service = JobService(workers=2).start()
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    port = httpd.server_address[1]
    try:
        yield HTTPServiceClient(f"http://127.0.0.1:{port}")
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=10)
        service.shutdown(drain=False)


class TestRoutes:
    def test_health(self, http_client):
        health = http_client.health()
        assert health["status"] == "ok"
        assert "simulate" in health["kinds"]
        assert not any(k.startswith("_") for k in health["kinds"])

    def test_submit_poll_result(self, http_client, bench_qasm):
        job = http_client.submit(
            "simulate", {"qasm": bench_qasm, "seed": 7, "shots": 100}
        )
        payload = http_client.result(job, timeout=60)
        assert payload["engine"] == "statevector"
        assert sum(payload["counts"]["counts"].values()) == 100

    def test_cached_resubmission(self, http_client, bench_qasm):
        params = {"qasm": bench_qasm, "seed": 17, "shots": 100}
        first = http_client.submit("simulate", dict(params))
        cold = http_client.result(first, timeout=60)
        second = http_client.submit("simulate", dict(params))
        view = http_client.status(second)
        assert view["cached"] is True
        assert view["result"] == cold

    def test_protect_over_http(self, http_client, bench_qasm):
        job = http_client.submit(
            "protect", {"qasm": bench_qasm, "seed": 3}
        )
        payload = http_client.result(job, timeout=60)
        assert payload["metadata"]["num_qubits"] == 4
        assert "OPENQASM" in payload["segment1_qasm"]

    def test_stats(self, http_client, bench_qasm):
        http_client.result(
            http_client.submit(
                "simulate", {"qasm": bench_qasm, "seed": 1, "shots": 10}
            ),
            timeout=60,
        )
        stats = http_client.stats()
        assert stats["total_jobs"] >= 1
        assert stats["workers"] == 2

    def test_cancel_round_trip(self, http_client):
        # saturate both workers, then cancel a queued job
        blockers = [
            http_client.submit("_sleep", {"seconds": 0.4})
            for _ in range(2)
        ]
        queued = http_client.submit("_sleep", {"seconds": 0.2})
        assert http_client.cancel(queued) is True
        with pytest.raises(ServiceError, match="cancelled"):
            http_client.result(queued, timeout=10)
        assert http_client.wait(blockers, timeout=60)


class TestErrors:
    def test_unknown_kind_is_400(self, http_client):
        with pytest.raises(ServiceError) as err:
            http_client.submit("frobnicate", {})
        assert err.value.status == 400

    def test_bad_qasm_is_400(self, http_client):
        with pytest.raises(ServiceError) as err:
            http_client.submit("simulate", {"qasm": "garbage"})
        assert err.value.status == 400

    def test_unknown_job_is_404(self, http_client):
        with pytest.raises(ServiceError) as err:
            http_client.status("j424242")
        assert err.value.status == 404

    def test_unknown_route_is_404(self, http_client):
        with pytest.raises(ServiceError) as err:
            http_client._call("GET", "/nope")
        assert err.value.status == 404

    def test_bad_priority_is_400(self, http_client):
        with pytest.raises(ServiceError) as err:
            http_client._call(
                "POST",
                "/jobs",
                {"kind": "simulate", "params": {}, "priority": "high"},
            )
        assert err.value.status == 400

    def test_bad_content_length_is_400(self, http_client):
        import http.client as http_lib

        host = http_client.url.split("//", 1)[1]
        conn = http_lib.HTTPConnection(host, timeout=5)
        conn.putrequest("POST", "/jobs")
        conn.putheader("Content-Length", "abc")
        conn.endheaders()
        response = conn.getresponse()
        assert response.status == 400
        assert b"Content-Length" in response.read()
        conn.close()

    def test_unreachable_server(self):
        client = HTTPServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()
