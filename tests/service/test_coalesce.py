"""Request coalescing: batching happens and never changes results."""

from repro.execution import run as execute
from repro.service import JobService, ServiceClient
from repro.service.coalesce import execute_simulate_batch
from repro.service.handlers import handle_simulate
from repro.service.requests import prepare_circuit


class TestBatchExecutor:
    def test_batch_matches_solo_handler_bit_for_bit(self, bench_qasm):
        """The pure worker function: one evolution, per-request draws."""
        params_list = [
            {"qasm": bench_qasm, "shots": 100 + 10 * i, "seed": i}
            for i in range(5)
        ]
        batched = execute_simulate_batch(params_list)
        solo = [handle_simulate(dict(p)) for p in params_list]
        assert batched == solo

    def test_batch_matches_direct_execution(self, bench_qasm):
        params_list = [
            {"qasm": bench_qasm, "shots": 200, "seed": s} for s in (1, 2)
        ]
        batched = execute_simulate_batch(params_list)
        circuit = prepare_circuit(bench_qasm)
        for payload, seed in zip(batched, (1, 2)):
            direct = execute(circuit, 200, seed=seed)
            assert payload["counts"] == direct.to_dict()


class TestServiceCoalescing:
    def test_queued_compatible_jobs_coalesce(self, bench_qasm):
        with JobService(
            workers=1, cache_size=0, coalesce=True, max_batch=32
        ) as svc:
            client = ServiceClient(svc)
            # hold the single worker so the simulate jobs pile up
            blocker = client.submit("_sleep", {"seconds": 0.4})
            jobs = [
                client.submit(
                    "simulate",
                    {"qasm": bench_qasm, "seed": s, "shots": 50},
                )
                for s in range(8)
            ]
            assert client.wait([blocker, *jobs], timeout=120)
            views = [svc.status(j) for j in jobs]
            group_sizes = {v["coalesced"] for v in views}
            assert max(group_sizes) > 1, group_sizes
            stats = svc.stats()
            assert stats["coalesced_jobs"] >= max(group_sizes)
            # coalesced or not, every job is bit-identical to solo
            circuit = prepare_circuit(bench_qasm)
            for seed, view in enumerate(views):
                direct = execute(circuit, 50, seed=seed)
                assert view["result"]["counts"] == direct.to_dict()

    def test_coalescing_disabled(self, bench_qasm):
        with JobService(
            workers=1, cache_size=0, coalesce=False
        ) as svc:
            client = ServiceClient(svc)
            blocker = client.submit("_sleep", {"seconds": 0.2})
            jobs = [
                client.submit(
                    "simulate",
                    {"qasm": bench_qasm, "seed": s, "shots": 20},
                )
                for s in range(4)
            ]
            assert client.wait([blocker, *jobs], timeout=120)
            assert all(
                svc.status(j)["coalesced"] == 1 for j in jobs
            )
            assert svc.stats()["coalesced_jobs"] == 0

    def test_max_batch_respected(self, bench_qasm):
        with JobService(
            workers=1, cache_size=0, coalesce=True, max_batch=3
        ) as svc:
            client = ServiceClient(svc)
            blocker = client.submit("_sleep", {"seconds": 0.4})
            jobs = [
                client.submit(
                    "simulate",
                    {"qasm": bench_qasm, "seed": s, "shots": 20},
                )
                for s in range(7)
            ]
            assert client.wait([blocker, *jobs], timeout=120)
            sizes = [svc.status(j)["coalesced"] for j in jobs]
            assert max(sizes) <= 3

    def test_incompatible_jobs_not_grouped(self, bench_qasm, bell_qasm):
        with JobService(
            workers=1, cache_size=0, coalesce=True, max_batch=32
        ) as svc:
            client = ServiceClient(svc)
            blocker = client.submit("_sleep", {"seconds": 0.3})
            bench_jobs = [
                client.submit(
                    "simulate",
                    {"qasm": bench_qasm, "seed": s, "shots": 20},
                )
                for s in range(2)
            ]
            noisy = client.submit(
                "simulate",
                {"qasm": bench_qasm, "seed": 5, "shots": 20, "noisy": True},
            )
            bell_jobs = [
                client.submit(
                    "simulate",
                    {"qasm": bell_qasm, "seed": s, "shots": 20},
                )
                for s in range(2)
            ]
            all_jobs = [blocker, *bench_jobs, noisy, *bell_jobs]
            assert client.wait(all_jobs, timeout=120)
            # the noisy job can never be in a coalesced group
            assert svc.status(noisy)["coalesced"] == 1
            # every result is still correct per its own request
            circuit = prepare_circuit(bell_qasm)
            for seed, job in enumerate(bell_jobs):
                direct = execute(circuit, 20, seed=seed)
                assert (
                    svc.status(job)["result"]["counts"]
                    == direct.to_dict()
                )
