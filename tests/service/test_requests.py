"""Request validation, fingerprints, and coalesce keys."""

import pytest

from repro.service.requests import (
    AttackRequest,
    EvaluateRequest,
    ProtectRequest,
    RawRequest,
    SimulateRequest,
    TranspileRequest,
    request_from_wire,
)

from service_qasm import BELL_QASM, MID_MEASURE_QASM


class TestWireParsing:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            request_from_wire("frobnicate", {})

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            request_from_wire("simulate", {"qasm": BELL_QASM, "nope": 1})

    def test_private_field_not_injectable(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            request_from_wire(
                "simulate", {"qasm": BELL_QASM, "_prepared": "x"}
            )

    def test_bad_qasm_fails_at_submit(self):
        with pytest.raises(ValueError):
            request_from_wire("simulate", {"qasm": "garbage"})

    def test_registered_raw_kind_accepted(self):
        request = request_from_wire("_sleep", {"seconds": 0.01})
        assert isinstance(request, RawRequest)
        assert request.KIND == "_sleep"
        assert request.fingerprint() is None
        assert request.coalesce_key() is None

    def test_params_round_trip(self):
        request = request_from_wire(
            "simulate", {"qasm": BELL_QASM, "seed": 3, "shots": 10}
        )
        clone = request_from_wire("simulate", request.params())
        assert clone.params() == request.params()
        assert clone.fingerprint() == request.fingerprint()


class TestValidation:
    def test_simulate_needs_positive_shots(self):
        with pytest.raises(ValueError, match="shots"):
            SimulateRequest(qasm=BELL_QASM, shots=0)

    def test_simulate_rejects_bad_precision(self):
        with pytest.raises(ValueError, match="precision"):
            SimulateRequest(qasm=BELL_QASM, precision="half")

    def test_protect_needs_pool(self):
        with pytest.raises(ValueError, match="gate_pool"):
            ProtectRequest(qasm=BELL_QASM, gate_pool="")

    def test_transpile_rejects_bad_coupling(self):
        with pytest.raises(ValueError, match="coupling"):
            TranspileRequest(qasm=BELL_QASM, coupling="torus")

    def test_evaluate_needs_exactly_one_target(self):
        with pytest.raises(ValueError, match="exactly one"):
            EvaluateRequest()
        with pytest.raises(ValueError, match="exactly one"):
            EvaluateRequest(benchmark="4gt13", qasm=BELL_QASM)

    def test_evaluate_rejects_unknown_benchmark(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            EvaluateRequest(benchmark="not_a_benchmark")

    def test_attack_rejects_unknown_adversary(self):
        with pytest.raises(ValueError, match="adversary"):
            AttackRequest(benchmark="4gt13", adversary="quantum")


class TestFingerprints:
    def test_unseeded_stochastic_not_cacheable(self):
        assert SimulateRequest(qasm=BELL_QASM).fingerprint() is None
        assert ProtectRequest(qasm=BELL_QASM).fingerprint() is None
        assert EvaluateRequest(benchmark="4gt13").fingerprint() is None

    def test_seeded_cacheable(self):
        assert SimulateRequest(qasm=BELL_QASM, seed=1).fingerprint()
        assert ProtectRequest(qasm=BELL_QASM, seed=1).fingerprint()

    def test_transpile_always_cacheable(self):
        assert TranspileRequest(qasm=BELL_QASM).fingerprint()

    def test_attack_always_cacheable(self):
        assert AttackRequest(benchmark="4gt13").fingerprint()

    def test_formatting_does_not_defeat_cache(self):
        spaced = BELL_QASM.replace("cx q[0],q[1]", "cx  q[0], q[1]")
        assert spaced != BELL_QASM
        a = SimulateRequest(qasm=BELL_QASM, seed=5).fingerprint()
        b = SimulateRequest(qasm=spaced, seed=5).fingerprint()
        assert a == b

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 6},
            {"shots": 11},
            {"noisy": True},
            {"method": "trajectory"},
            {"precision": "double"},
        ],
    )
    def test_any_param_change_changes_fingerprint(self, override):
        base = dict(qasm=BELL_QASM, seed=5, shots=10)
        reference = SimulateRequest(**base).fingerprint()
        changed = SimulateRequest(**{**base, **override}).fingerprint()
        assert changed != reference

    def test_kind_in_fingerprint(self):
        sim = SimulateRequest(qasm=BELL_QASM, seed=1).fingerprint()
        prot = ProtectRequest(qasm=BELL_QASM, seed=1).fingerprint()
        assert sim != prot


class TestCoalesceKeys:
    def test_eligible_requests_share_a_key(self):
        a = SimulateRequest(qasm=BELL_QASM, seed=1, shots=10)
        b = SimulateRequest(qasm=BELL_QASM, seed=2, shots=999)
        assert a.coalesce_key() is not None
        assert a.coalesce_key() == b.coalesce_key()

    def test_different_circuits_do_not_coalesce(self, bench_qasm):
        a = SimulateRequest(qasm=BELL_QASM)
        b = SimulateRequest(qasm=bench_qasm)
        assert a.coalesce_key() != b.coalesce_key()

    def test_noisy_not_coalescable(self):
        assert SimulateRequest(qasm=BELL_QASM, noisy=True).coalesce_key() \
            is None

    def test_single_precision_not_coalescable(self):
        request = SimulateRequest(qasm=BELL_QASM, precision="single")
        assert request.coalesce_key() is None

    def test_forced_engine_not_coalescable(self):
        request = SimulateRequest(qasm=BELL_QASM, method="trajectory")
        assert request.coalesce_key() is None

    def test_mid_circuit_measurement_not_coalescable(self):
        request = SimulateRequest(qasm=MID_MEASURE_QASM)
        assert request.coalesce_key() is None

    def test_double_precision_coalesces_with_default(self):
        a = SimulateRequest(qasm=BELL_QASM)
        b = SimulateRequest(qasm=BELL_QASM, precision="double")
        assert a.coalesce_key() == b.coalesce_key()
