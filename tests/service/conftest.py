"""Shared fixtures for the service tests: tiny circuits, fast jobs."""

import pytest

from repro.circuits import to_qasm
from repro.revlib.benchmarks import benchmark_circuit

from service_qasm import BELL_QASM


@pytest.fixture(scope="session")
def bell_qasm():
    return BELL_QASM


@pytest.fixture(scope="session")
def bench_qasm():
    """A real RevLib benchmark as QASM (4 qubits, deterministic)."""
    return to_qasm(benchmark_circuit("4gt13"))
