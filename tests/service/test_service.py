"""JobService end-to-end behaviour: submit, results, priority, cache."""

import pytest

from repro.circuits import from_qasm, to_qasm
from repro.core.protect import protect_circuit
from repro.execution import run as execute
from repro.service import (
    JobService,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    SimulateRequest,
    register_handler,
    unregister_handler,
)
from repro.service.requests import prepare_circuit

from service_qasm import BELL_QASM


@pytest.fixture()
def service():
    with JobService(workers=2) as svc:
        yield svc


class TestSubmitAndResult:
    def test_wire_and_typed_submission_agree(self, service, bench_qasm):
        client = ServiceClient(service)
        a = client.submit(
            "simulate", {"qasm": bench_qasm, "seed": 9, "shots": 50}
        )
        b = client.submit(
            SimulateRequest(qasm=bench_qasm, seed=9, shots=50)
        )
        assert client.result(a, timeout=60) == client.result(b, timeout=60)

    def test_simulate_bit_identical_to_direct_run(
        self, service, bench_qasm
    ):
        client = ServiceClient(service)
        job = client.submit(
            "simulate", {"qasm": bench_qasm, "seed": 7, "shots": 400}
        )
        payload = client.result(job, timeout=60)
        direct = execute(prepare_circuit(bench_qasm), 400, seed=7)
        assert payload["counts"] == direct.to_dict()
        assert payload["engine"] == "statevector"

    def test_noisy_simulate_bit_identical_to_direct_run(
        self, service, bench_qasm
    ):
        from repro.noise import valencia_like_backend

        client = ServiceClient(service)
        job = client.submit(
            "simulate",
            {"qasm": bench_qasm, "seed": 11, "shots": 60, "noisy": True},
        )
        payload = client.result(job, timeout=120)
        circuit = prepare_circuit(bench_qasm)
        model = valencia_like_backend(circuit.num_qubits).noise_model()
        direct = execute(circuit, 60, noise_model=model, seed=11)
        assert payload["counts"] == direct.to_dict()
        assert payload["engine"] == "batched"

    def test_protect_matches_library_call(self, service, bench_qasm):
        client = ServiceClient(service)
        job = client.submit("protect", {"qasm": bench_qasm, "seed": 5})
        payload = client.result(job, timeout=60)
        direct = protect_circuit(from_qasm(bench_qasm), seed=5)
        assert payload["segment1_qasm"] == to_qasm(
            direct.split.segment1.compact
        )
        assert payload["segment2_qasm"] == to_qasm(
            direct.split.segment2.compact
        )
        assert payload["metadata"] == direct.metadata()

    def test_transpile_job(self, service, bench_qasm):
        client = ServiceClient(service)
        job = client.submit("transpile", {"qasm": bench_qasm, "level": 2})
        payload = client.result(job, timeout=60)
        compiled = from_qasm(payload["qasm"])
        assert compiled.size() == payload["size"] > 0

    def test_status_of_unknown_job(self, service):
        with pytest.raises(KeyError, match="unknown job"):
            service.status("j999999")

    def test_wait_timeout_returns_false(self, service):
        job = service.submit("_sleep", {"seconds": 1.0})
        assert service.wait([job], timeout=0.05) is False
        assert service.wait([job], timeout=30) is True


class TestDeterminism:
    def test_same_seed_any_worker_count(self, bench_qasm):
        """The headline guarantee: worker count never changes results."""
        payloads = []
        for workers in (1, 3):
            with JobService(workers=workers, cache_size=0) as svc:
                client = ServiceClient(svc)
                jobs = [
                    client.submit(
                        "simulate",
                        {"qasm": bench_qasm, "seed": s, "shots": 100},
                    )
                    for s in range(4)
                ]
                payloads.append(
                    [client.result(j, timeout=60) for j in jobs]
                )
        assert payloads[0] == payloads[1]

    def test_evaluate_seeding_is_positional(self, service):
        """evaluate uses SeedSequence(seed).spawn — same seed, same rows."""
        client = ServiceClient(service)
        params = {
            "benchmark": "one_bit_adder",
            "shots": 80,
            "iterations": 2,
            "seed": 13,
        }
        first = client.result(
            client.submit("evaluate", dict(params)), timeout=300
        )
        with JobService(workers=1, cache_size=0) as other:
            second = ServiceClient(other).result(
                other.submit("evaluate", dict(params)), timeout=300
            )
        assert first == second
        assert len(first["iterations"]) == 2


class TestPriorities:
    def test_lower_priority_value_runs_first(self, bench_qasm):
        with JobService(workers=1, cache_size=0) as svc:
            client = ServiceClient(svc)
            # occupy the single worker so later jobs queue up
            blocker = client.submit("_sleep", {"seconds": 0.4})
            low = client.submit(
                "simulate",
                {"qasm": bench_qasm, "seed": 1, "shots": 10},
                priority=5,
            )
            high = client.submit(
                "simulate",
                {"qasm": bench_qasm, "seed": 2, "shots": 10},
                priority=-5,
            )
            assert client.wait([blocker, low, high], timeout=60)
            low_view = svc.status(low)
            high_view = svc.status(high)
            assert high_view["started_at"] <= low_view["started_at"]


class TestResultCache:
    def test_identical_resubmission_is_a_hit(self, service, bench_qasm):
        client = ServiceClient(service)
        params = {"qasm": bench_qasm, "seed": 21, "shots": 100}
        first = client.submit("simulate", dict(params))
        cold = client.result(first, timeout=60)
        second = client.submit("simulate", dict(params))
        view = service.result(second, timeout=60)
        assert view["cached"] is True
        assert view["result"] == cold

    def test_formatting_variant_also_hits(self, service, bench_qasm):
        client = ServiceClient(service)
        params = {"qasm": bench_qasm, "seed": 22, "shots": 100}
        client.result(client.submit("simulate", dict(params)), timeout=60)
        spaced = bench_qasm.replace(";\n", " ;\n")
        second = client.submit(
            "simulate", {"qasm": spaced, "seed": 22, "shots": 100}
        )
        assert service.result(second, timeout=60)["cached"] is True

    def test_unseeded_jobs_never_cached(self, service, bench_qasm):
        client = ServiceClient(service)
        params = {"qasm": bench_qasm, "shots": 50}
        first = client.submit("simulate", dict(params))
        client.result(first, timeout=60)
        second = client.submit("simulate", dict(params))
        assert service.result(second, timeout=60)["cached"] is False

    def test_cache_disabled(self, bench_qasm):
        with JobService(workers=1, cache_size=0) as svc:
            client = ServiceClient(svc)
            params = {"qasm": bench_qasm, "seed": 3, "shots": 50}
            client.result(client.submit("simulate", dict(params)), 60)
            second = client.submit("simulate", dict(params))
            assert svc.result(second, timeout=60)["cached"] is False


class TestCustomHandlers:
    def test_registered_kind_round_trip(self, bench_qasm):
        register_handler("echo", _echo_handler)
        try:
            # register BEFORE start(): workers inherit the registry
            with JobService(workers=1) as svc:
                client = ServiceClient(svc)
                job = client.submit("echo", {"value": 42})
                assert client.result(job, timeout=60) == {"value": 42}
        finally:
            unregister_handler("echo")


class TestLifecycleGuards:
    def test_submit_after_shutdown_raises(self, bench_qasm):
        svc = JobService(workers=1)
        svc.start()
        svc.shutdown()
        with pytest.raises(ServiceUnavailable):
            svc.submit("simulate", {"qasm": bench_qasm, "seed": 1})

    def test_submit_without_start_raises(self, bench_qasm):
        svc = JobService(workers=1)
        with pytest.raises(ServiceUnavailable):
            svc.submit("simulate", {"qasm": bench_qasm, "seed": 1})

    def test_failed_job_raises_service_error(self, service):
        client = ServiceClient(service)
        # statevector cannot honour mid-circuit measurement -> the
        # handler raises inside the worker and the job fails cleanly
        from service_qasm import MID_MEASURE_QASM

        job = client.submit(
            "simulate",
            {"qasm": MID_MEASURE_QASM, "method": "statevector", "seed": 1},
        )
        with pytest.raises(ServiceError, match="failed"):
            client.result(job, timeout=60)
        assert service.status(job)["state"] == "failed"

    def test_stats_shape(self, service, bench_qasm):
        client = ServiceClient(service)
        client.result(
            client.submit(
                "simulate", {"qasm": bench_qasm, "seed": 2, "shots": 10}
            ),
            timeout=60,
        )
        stats = service.stats()
        assert stats["jobs"]["done"] >= 1
        assert stats["workers"] == 2
        assert stats["cache"]["maxsize"] == 256


def _echo_handler(params):
    return dict(params)
