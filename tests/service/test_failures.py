"""Service failure paths: crashes, cancellation, drain, cache replay.

These are the satellite-task guarantees: a worker crash mid-job marks
the job failed (never hung) and the pool recovers; queued jobs can be
cancelled; graceful shutdown drains; a cache hit replays bit-identical
counts.
"""

import pytest

from repro.execution import run as execute
from repro.service import JobService, ServiceClient, ServiceError
from repro.service.requests import prepare_circuit


class TestWorkerCrash:
    def test_crash_marks_job_failed_not_hung(self):
        with JobService(workers=1, cache_size=0) as svc:
            job = svc.submit("_crash", {"code": 3})
            view = svc.result(job, timeout=60)  # must not hang
            assert view["state"] == "failed"
            assert "worker process died" in view["error"]

    def test_pool_recovers_after_crash(self, bench_qasm):
        with JobService(workers=1, cache_size=0) as svc:
            client = ServiceClient(svc)
            crash = svc.submit("_crash", {})
            svc.result(crash, timeout=60)
            # the replacement pool serves subsequent jobs normally
            job = client.submit(
                "simulate", {"qasm": bench_qasm, "seed": 4, "shots": 50}
            )
            payload = client.result(job, timeout=60)
            direct = execute(prepare_circuit(bench_qasm), 50, seed=4)
            assert payload["counts"] == direct.to_dict()

    def test_queued_jobs_survive_a_crash(self, bench_qasm):
        with JobService(workers=1, cache_size=0) as svc:
            client = ServiceClient(svc)
            crash = svc.submit("_crash", {})
            queued = [
                client.submit(
                    "simulate",
                    {"qasm": bench_qasm, "seed": s, "shots": 20},
                )
                for s in range(3)
            ]
            assert svc.wait([crash, *queued], timeout=120)
            assert svc.status(crash)["state"] == "failed"
            for job in queued:
                assert svc.status(job)["state"] == "done"


    def test_crash_during_drain_still_finishes_queue(self, bench_qasm):
        """Drain's contract holds even if a worker dies mid-drain."""
        svc = JobService(workers=1, cache_size=0).start()
        crash = svc.submit("_crash", {})
        queued = [
            svc.submit(
                "simulate", {"qasm": bench_qasm, "seed": s, "shots": 20}
            )
            for s in range(3)
        ]
        svc.shutdown(drain=True)
        assert svc.status(crash)["state"] == "failed"
        for job in queued:
            assert svc.status(job)["state"] == "done"


class TestHistoryBound:
    def test_old_terminal_jobs_evicted(self):
        with JobService(
            workers=1, cache_size=0, max_history=3
        ) as svc:
            jobs = [
                svc.submit("_sleep", {"seconds": 0.0}) for _ in range(6)
            ]
            assert svc.wait(jobs, timeout=60)
            stats = svc.stats()
            assert stats["total_jobs"] <= 3
            # the newest job is still pollable, the oldest is gone
            assert svc.status(jobs[-1])["state"] == "done"
            with pytest.raises(KeyError):
                svc.status(jobs[0])


class TestCancellation:
    def test_cancel_queued_job(self):
        with JobService(workers=1, cache_size=0) as svc:
            blocker = svc.submit("_sleep", {"seconds": 0.5})
            queued = svc.submit("_sleep", {"seconds": 0.01})
            assert svc.cancel(queued) is True
            view = svc.result(queued, timeout=10)
            assert view["state"] == "cancelled"
            with pytest.raises(ServiceError, match="cancelled"):
                ServiceClient(svc).result(queued, timeout=10)
            # the blocker is untouched
            assert svc.result(blocker, timeout=60)["state"] == "done"

    def test_cancel_running_job_refused(self):
        with JobService(workers=1, cache_size=0) as svc:
            job = svc.submit("_sleep", {"seconds": 0.4})
            # wait until it actually starts
            for _ in range(200):
                if svc.status(job)["state"] == "running":
                    break
                import time

                time.sleep(0.005)
            assert svc.cancel(job) is False
            assert svc.result(job, timeout=60)["state"] == "done"

    def test_cancel_terminal_job(self):
        with JobService(workers=1, cache_size=0) as svc:
            job = svc.submit("_sleep", {"seconds": 0.01})
            svc.result(job, timeout=60)
            assert svc.cancel(job) is False


class TestShutdown:
    def test_graceful_shutdown_drains_everything(self):
        svc = JobService(workers=2, cache_size=0).start()
        jobs = [
            svc.submit("_sleep", {"seconds": 0.15}) for _ in range(5)
        ]
        svc.shutdown(drain=True)
        for job in jobs:
            view = svc.status(job)
            assert view["state"] == "done", view
            assert view["result"] == {"slept": 0.15}

    def test_fast_shutdown_cancels_queued(self):
        svc = JobService(workers=1, cache_size=0).start()
        running = svc.submit("_sleep", {"seconds": 0.3})
        queued = [svc.submit("_sleep", {"seconds": 0.3}) for _ in range(3)]
        import time

        # wait until the first job actually occupies the worker
        for _ in range(200):
            if svc.status(running)["state"] == "running":
                break
            time.sleep(0.005)
        svc.shutdown(drain=False)
        assert svc.status(running)["state"] == "done"
        states = {svc.status(j)["state"] for j in queued}
        assert states == {"cancelled"}


    def test_shutdown_timeout_raises_and_can_be_retried(self):
        svc = JobService(workers=1, cache_size=0).start()
        job = svc.submit("_sleep", {"seconds": 0.6})
        with pytest.raises(TimeoutError, match="still settling"):
            svc.shutdown(drain=True, timeout=0.05)
        # the service stayed consistent: finishing the drain works
        svc.shutdown(drain=True)
        assert svc.status(job)["state"] == "done"


class TestCacheReplay:
    def test_hit_is_bit_identical_to_cold_run(self, bench_qasm):
        """Warm-cache counts == cold-run counts, bit for bit."""
        params = {"qasm": bench_qasm, "seed": 33, "shots": 250}
        with JobService(workers=1) as svc:
            client = ServiceClient(svc)
            cold = client.result(
                client.submit("simulate", dict(params)), timeout=60
            )
            warm_view = svc.result(
                svc.submit("simulate", dict(params)), timeout=60
            )
        assert warm_view["cached"] is True
        assert warm_view["result"] == cold
        # and both equal a run on a completely fresh service
        with JobService(workers=1) as fresh:
            fresh_client = ServiceClient(fresh)
            rerun = fresh_client.result(
                fresh_client.submit("simulate", dict(params)), timeout=60
            )
        assert rerun == cold
