"""The shared hashing helper and its three consumers."""

import numpy as np

from repro._hashing import canonical_json, json_digest, new_digest
from repro.circuits import from_qasm
from repro.experiments.framework.store import config_hash
from repro.transpiler.cache import circuit_structural_hash


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json(
            {"b": 2, "a": 1}
        )

    def test_tuple_and_list_identical(self):
        assert canonical_json({"x": (1, 2)}) == canonical_json({"x": [1, 2]})

    def test_no_whitespace(self):
        assert " " not in canonical_json({"a": [1, 2], "b": {"c": 3}})

    def test_non_json_values_stringified(self):
        text = canonical_json({"p": np.int64(3)})
        assert "3" in text


class TestJsonDigest:
    def test_digest_size(self):
        assert len(json_digest({"a": 1}, digest_size=8)) == 16
        assert len(json_digest({"a": 1}, digest_size=16)) == 32

    def test_value_sensitivity(self):
        assert json_digest({"a": 1}) != json_digest({"a": 2})

    def test_new_digest_matches_hashlib(self):
        digest = new_digest(digest_size=16)
        digest.update(b"payload")
        import hashlib

        reference = hashlib.blake2b(b"payload", digest_size=16)
        assert digest.hexdigest() == reference.hexdigest()


class TestConsumersUnchanged:
    def test_config_hash_value_pinned(self):
        """Checkpoint files key on this hash — the shared-helper
        refactor must not orphan existing ``results/`` stores."""
        config = {
            "iterations": 2,
            "shots": 100,
            "seed": 17,
            "benchmarks": ["4gt13"],
        }
        assert config_hash(config) == "6ee57b017706b725"

    def test_config_hash_is_json_digest(self):
        config = {"seed": 1, "grid": [1, 2, 3]}
        assert config_hash(config) == json_digest(config, digest_size=8)

    def test_circuit_hash_formatting_independent(self, tmp_path=None):
        a = from_qasm(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\n'
            "h q[0];\ncx q[0],q[1];\n"
        )
        b = from_qasm(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n\nqreg q[2];\n'
            "h  q[0];\ncx q[0], q[1];\n"
        )
        assert circuit_structural_hash(a) == circuit_structural_hash(b)
