"""The package-level public API works as documented in the README."""

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_flow(self):
        """The README quickstart, end to end."""
        qc = repro.QuantumCircuit(3)
        qc.x(2).ccx(0, 1, 2).cx(0, 1)
        insertion = repro.TetrisLockObfuscator(seed=7).obfuscate(qc)
        split = repro.interlocking_split(insertion, seed=7)
        restored = split.recombined()
        from repro.synth import simulate_reversible

        assert simulate_reversible(restored) == simulate_reversible(qc)

    def test_benchmark_access(self):
        assert len(repro.paper_suite()) == 8
        circuit = repro.benchmark_circuit("rd84")
        assert circuit.num_qubits == 12

    def test_backend_and_simulation(self):
        backend = repro.fake_valencia()
        qc = repro.QuantumCircuit(2)
        qc.h(0).cx(0, 1).measure_all()
        counts = repro.run_counts_batched(
            qc, shots=100, noise_model=backend.noise_model(), seed=0
        )
        assert counts.shots == 100

    def test_transpile_entry_point(self):
        qc = repro.QuantumCircuit(3)
        qc.ccx(0, 1, 2)
        result = repro.transpile(qc, backend=repro.valencia_like_backend(3))
        assert result.size > 0

    def test_attack_complexities(self):
        assert repro.tetrislock_attack_complexity(
            5, 27, 2
        ) > repro.saki_attack_complexity(5, 2)
