"""Tests for QASM I/O, random circuit generation and the drawer."""

import math

import numpy as np
import pytest

from repro.circuits import (
    QasmError,
    QuantumCircuit,
    draw_circuit,
    from_qasm,
    random_circuit,
    random_reversible_circuit,
    to_qasm,
)
from repro.simulator import circuit_unitary, equal_up_to_global_phase


class TestQasmWriter:
    def test_header(self):
        qasm = to_qasm(QuantumCircuit(3, 2))
        assert "OPENQASM 2.0;" in qasm
        assert "qreg q[3];" in qasm
        assert "creg c[2];" in qasm

    def test_gate_lines(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).rz(math.pi / 2, 1)
        qasm = to_qasm(qc)
        assert "h q[0];" in qasm
        assert "cx q[0],q[1];" in qasm
        assert "rz(pi/2) q[1];" in qasm

    def test_measure_line(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        assert "measure q[0] -> c[0];" in to_qasm(qc)

    def test_barrier_line(self):
        qc = QuantumCircuit(2)
        qc.barrier()
        assert "barrier q[0],q[1];" in to_qasm(qc)

    def test_mcx_rejected(self):
        qc = QuantumCircuit(5)
        qc.mcx([0, 1, 2, 3], 4)
        with pytest.raises(QasmError):
            to_qasm(qc)


class TestQasmReader:
    def test_roundtrip_preserves_semantics(self):
        qc = random_circuit(
            3, 15,
            gate_pool=["h", "x", "z", "s", "t", "cx", "cz", "swap",
                       "rx", "ry", "rz", "ccx"],
            seed=5,
        )
        restored = from_qasm(to_qasm(qc))
        assert equal_up_to_global_phase(
            circuit_unitary(qc), circuit_unitary(restored)
        )

    def test_roundtrip_structural_equality(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1)
        assert from_qasm(to_qasm(qc)) == qc

    def test_comments_ignored(self):
        program = """
        OPENQASM 2.0; // header comment
        include "qelib1.inc";
        qreg q[1];
        x q[0]; // flip
        """
        qc = from_qasm(program)
        assert qc.size() == 1

    def test_pi_expressions(self):
        qc = from_qasm(
            'OPENQASM 2.0; qreg q[1]; rz(pi/4) q[0]; rz(-pi) q[0]; '
            "rz(2*pi/3) q[0];"
        )
        angles = [inst.operation.params[0] for inst in qc]
        assert angles == pytest.approx(
            [math.pi / 4, -math.pi, 2 * math.pi / 3]
        )

    def test_missing_qreg_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0; x q[0];")

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0; qreg q[1]; frob q[0];")

    def test_malicious_parameter_rejected(self):
        with pytest.raises(QasmError):
            from_qasm(
                "OPENQASM 2.0; qreg q[1]; rz(__import__) q[0];"
            )


class TestRandomCircuits:
    def test_gate_count(self):
        qc = random_circuit(4, 25, seed=0)
        assert qc.size() == 25

    def test_seed_reproducibility(self):
        a = random_circuit(4, 20, seed=42)
        b = random_circuit(4, 20, seed=42)
        assert a == b

    def test_pool_respected(self):
        qc = random_circuit(3, 30, gate_pool=["x", "cx"], seed=1)
        assert set(qc.count_ops()) <= {"x", "cx"}

    def test_arity_exceeding_width_rejected(self):
        with pytest.raises(ValueError):
            random_circuit(1, 5, gate_pool=["cx"], seed=0)

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            random_circuit(0, 5)

    def test_reversible_pool(self):
        qc = random_reversible_circuit(4, 30, seed=3)
        assert set(qc.count_ops()) <= {"x", "cx", "ccx"}

    def test_reversible_single_qubit(self):
        qc = random_reversible_circuit(1, 5, seed=3)
        assert set(qc.count_ops()) == {"x"}

    def test_parameterised_pool(self):
        qc = random_circuit(2, 10, gate_pool=["u3", "cp"], seed=9)
        for inst in qc:
            assert len(inst.operation.params) in (1, 3)


class TestDrawer:
    def test_wire_per_qubit(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 2)
        art = draw_circuit(qc)
        assert len(art.splitlines()) == 3
        assert "H" in art

    def test_cx_symbols(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        art = draw_circuit(qc)
        lines = art.splitlines()
        assert "*" in lines[0]
        assert "X" in lines[1]

    def test_vertical_connector(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 2)
        art = draw_circuit(qc)
        assert "|" in art.splitlines()[1]

    def test_empty_circuit(self):
        art = draw_circuit(QuantumCircuit(2))
        assert len(art.splitlines()) == 2
