"""Tests for DAG/layer views and the occupancy grid."""

import pytest

from repro.circuits import (
    CircuitDag,
    OccupancyGrid,
    QuantumCircuit,
    circuit_layers,
    empty_positions_by_layer,
    layer_assignment,
)


def staircase_circuit():
    """x on q2 first, then cx(1,2), then ccx(0,1,2) — a left staircase."""
    qc = QuantumCircuit(3)
    qc.x(2).cx(1, 2).ccx(0, 1, 2)
    return qc


class TestLayers:
    def test_layer_assignment_sequential(self):
        qc = QuantumCircuit(1)
        qc.x(0).x(0)
        assert layer_assignment(qc) == [0, 1]

    def test_layer_assignment_parallel(self):
        qc = QuantumCircuit(2)
        qc.x(0).x(1)
        assert layer_assignment(qc) == [0, 0]

    def test_circuit_layers_structure(self):
        layers = circuit_layers(staircase_circuit())
        assert len(layers) == 3
        assert [len(layer) for layer in layers] == [1, 1, 1]

    def test_barriers_omitted_from_layers(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.barrier()
        qc.x(1)
        layers = circuit_layers(qc)
        assert sum(len(layer) for layer in layers) == 2

    def test_empty_positions(self):
        empties = empty_positions_by_layer(staircase_circuit())
        assert empties[0] == [0, 1]
        assert empties[1] == [0]
        assert empties[2] == []


class TestCircuitDag:
    def test_edges_follow_shared_qubits(self):
        dag = CircuitDag(staircase_circuit())
        assert dag.successors(0) == [1]
        assert dag.successors(1) == [2]
        assert dag.predecessors(2) == [1]

    def test_ancestors_descendants(self):
        dag = CircuitDag(staircase_circuit())
        assert dag.ancestors(2) == {0, 1}
        assert dag.descendants(0) == {1, 2}

    def test_downward_closure(self):
        dag = CircuitDag(staircase_circuit())
        assert dag.downward_closure([2]) == {0, 1, 2}
        assert dag.downward_closure([0]) == {0}

    def test_is_dependency_closed(self):
        dag = CircuitDag(staircase_circuit())
        assert dag.is_dependency_closed({0})
        assert dag.is_dependency_closed({0, 1})
        assert not dag.is_dependency_closed({1})

    def test_split_indices_order(self):
        dag = CircuitDag(staircase_circuit())
        left, right = dag.split_indices({0, 1})
        assert left == [0, 1]
        assert right == [2]

    def test_split_rejects_open_set(self):
        dag = CircuitDag(staircase_circuit())
        with pytest.raises(ValueError):
            dag.split_indices({2})

    def test_topological_order_valid(self):
        qc = QuantumCircuit(3)
        qc.x(0).x(1).cx(0, 1).cx(1, 2)
        dag = CircuitDag(qc)
        order = dag.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for a, b in dag.graph.edges():
            assert position[a] < position[b]

    def test_parallel_gates_independent(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 1).cx(2, 3)
        dag = CircuitDag(qc)
        assert dag.ancestors(1) == set()
        assert dag.is_dependency_closed({1})


class TestOccupancyGrid:
    def test_dimensions(self):
        grid = OccupancyGrid(staircase_circuit())
        assert grid.num_layers == 3
        assert grid.num_qubits == 3

    def test_is_free(self):
        grid = OccupancyGrid(staircase_circuit())
        assert grid.is_free(0, 0)
        assert grid.is_free(0, 1)
        assert not grid.is_free(0, 2)
        assert not grid.is_free(2, 0)
        assert not grid.is_free(99, 0)  # out of range -> not free

    def test_free_counts(self):
        grid = OccupancyGrid(staircase_circuit())
        assert grid.total_free_slots() == 3
        assert grid.free_qubits(0) == [0, 1]
        assert grid.free_layers(0) == [0, 1]

    def test_occupancy_ratio(self):
        grid = OccupancyGrid(staircase_circuit())
        assert grid.occupancy_ratio() == pytest.approx(6 / 9)

    def test_staircase(self):
        grid = OccupancyGrid(staircase_circuit())
        assert grid.staircase() == {0: 2, 1: 1, 2: 0}

    def test_mark_occupies(self):
        grid = OccupancyGrid(staircase_circuit())
        grid.mark(0, [0])
        assert not grid.is_free(0, 0)
        with pytest.raises(ValueError):
            grid.mark(0, [0])

    def test_mark_out_of_range(self):
        grid = OccupancyGrid(staircase_circuit())
        with pytest.raises(IndexError):
            grid.mark(5, [0])

    def test_find_pair_slot_prefix(self):
        grid = OccupancyGrid(staircase_circuit())
        assert grid.find_pair_slot([0], prefix_only=True) == (0, 1)
        assert grid.find_pair_slot([2], prefix_only=True) is None

    def test_find_single_slot(self):
        grid = OccupancyGrid(staircase_circuit())
        assert grid.find_single_slot([0]) == 0
        assert grid.find_single_slot([2]) is None

    def test_empty_circuit_grid(self):
        grid = OccupancyGrid(QuantumCircuit(2))
        assert grid.num_layers == 0
        assert grid.total_free_slots() == 0
        assert grid.occupancy_ratio() == 0.0
