"""Tests for the algorithm-circuit library."""

import numpy as np
import pytest

from repro.circuits import (
    bernstein_vazirani_circuit,
    ghz_circuit,
    grover_circuit,
    qft_circuit,
)
from repro.simulator import Statevector, circuit_unitary


class TestGrover:
    def test_amplifies_marked_state(self):
        circuit = grover_circuit(3, marked=0b101, iterations=2)
        probs = Statevector(3).evolve(circuit).probabilities()
        assert probs[0b101] > 0.85
        assert probs[0b101] == max(probs)

    def test_single_qubit_case(self):
        """n=1 Grover caps at 50% — sin^2(3*45 deg) — by theory."""
        circuit = grover_circuit(1, marked=1)
        probs = Statevector(1).evolve(circuit).probabilities()
        assert probs[1] == pytest.approx(0.5, abs=1e-9)

    def test_default_iteration_count(self):
        circuit = grover_circuit(2, marked=3)
        probs = Statevector(2).evolve(circuit).probabilities()
        assert probs[3] > 0.9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            grover_circuit(0)
        with pytest.raises(ValueError):
            grover_circuit(2, marked=4)

    def test_hadamard_rich(self):
        """The tailoring rationale: Grover circuits are full of H."""
        circuit = grover_circuit(3, marked=1)
        assert circuit.count_ops()["h"] >= 6


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", ["101", "0", "1111", "010"])
    def test_recovers_secret(self, secret):
        circuit = bernstein_vazirani_circuit(secret)
        state = Statevector(circuit.num_qubits).evolve(circuit)
        counts = state.sample_counts(
            50, rng=np.random.default_rng(0),
            qubits=list(range(len(secret))),
        )
        assert counts == {secret: 50}

    def test_invalid_secret(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit("")
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit("10a")


class TestGhzAndQft:
    def test_ghz_distribution(self):
        state = Statevector(4).evolve(ghz_circuit(4))
        probs = state.probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[-1] == pytest.approx(0.5)

    def test_ghz_needs_two_qubits(self):
        with pytest.raises(ValueError):
            ghz_circuit(1)

    def test_qft_matrix(self):
        """QFT matrix entries are the DFT phases (up to bit order)."""
        n = 2
        unitary = circuit_unitary(qft_circuit(n))
        dim = 2 ** n
        omega = np.exp(2j * np.pi / dim)
        dft = np.array(
            [[omega ** (r * c) for c in range(dim)] for r in range(dim)]
        ) / np.sqrt(dim)
        # our QFT omits the final bit-reversal swaps
        reversal = np.zeros((dim, dim))
        for k in range(dim):
            rev = int(format(k, f"0{n}b")[::-1], 2)
            reversal[rev, k] = 1.0
        assert np.allclose(reversal @ unitary, dft, atol=1e-9)

    def test_qft_validates(self):
        with pytest.raises(ValueError):
            qft_circuit(0)
