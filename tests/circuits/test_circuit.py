"""Unit tests for QuantumCircuit."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.gates import Barrier, CXGate, HGate, XGate
from repro.circuits.instruction import Instruction


class TestConstruction:
    def test_empty_circuit(self):
        qc = QuantumCircuit(3)
        assert qc.num_qubits == 3
        assert len(qc) == 0
        assert qc.depth() == 0
        assert qc.size() == 0

    def test_negative_register_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(-1)

    def test_builders_chain(self):
        qc = QuantumCircuit(3)
        result = qc.h(0).cx(0, 1).ccx(0, 1, 2)
        assert result is qc
        assert len(qc) == 3

    def test_all_single_qubit_builders(self):
        qc = QuantumCircuit(1)
        qc.i(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).tdg(0).sx(0)
        qc.rx(0.1, 0).ry(0.2, 0).rz(0.3, 0).p(0.4, 0)
        qc.u1(0.5, 0).u2(0.6, 0.7, 0).u3(0.8, 0.9, 1.0, 0)
        assert qc.size() == 17

    def test_all_multi_qubit_builders(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1).cy(1, 2).cz(0, 2).ch(0, 1).swap(1, 2)
        qc.crz(0.5, 0, 1).cp(0.25, 1, 2).ccx(0, 1, 2).cswap(0, 1, 2)
        qc.mcx([0, 1], 2)
        assert qc.size() == 10

    def test_out_of_range_qubit_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(IndexError):
            qc.x(2)
        with pytest.raises(IndexError):
            qc.cx(0, 5)

    def test_unitary_builder(self):
        qc = QuantumCircuit(1)
        qc.unitary(HGate().matrix, [0], label="uh")
        assert qc[0].name == "uh"

    def test_insert_at_position(self):
        qc = QuantumCircuit(1)
        qc.x(0).x(0)
        qc.insert(1, HGate(), [0])
        assert [inst.name for inst in qc] == ["x", "h", "x"]


class TestDepth:
    def test_sequential_gates_on_one_qubit(self):
        qc = QuantumCircuit(1)
        qc.x(0).x(0).x(0)
        assert qc.depth() == 3

    def test_parallel_gates(self):
        qc = QuantumCircuit(3)
        qc.x(0).x(1).x(2)
        assert qc.depth() == 1

    def test_two_qubit_gate_synchronises(self):
        qc = QuantumCircuit(2)
        qc.x(0).cx(0, 1).x(1)
        assert qc.depth() == 3

    def test_barrier_not_counted_but_synchronises(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.barrier()
        qc.x(1)
        # without a barrier x(1) would sit at layer 0; with it, layer 1
        assert qc.depth() == 2

    def test_measure_excluded_by_default(self):
        qc = QuantumCircuit(1, 1)
        qc.x(0).measure(0, 0)
        assert qc.depth() == 1
        assert qc.depth(include_measures=True) == 2

    def test_benchmark_depths_match_table1(self):
        from repro.revlib import paper_suite

        for record in paper_suite():
            assert record.circuit().depth() == record.depth


class TestInspection:
    def test_count_ops(self):
        qc = QuantumCircuit(2)
        qc.x(0).x(1).cx(0, 1)
        counts = qc.count_ops()
        assert counts["x"] == 2
        assert counts["cx"] == 1

    def test_active_qubits(self):
        qc = QuantumCircuit(5)
        qc.x(1).cx(1, 3)
        assert qc.active_qubits() == {1, 3}

    def test_two_qubit_gate_count(self):
        qc = QuantumCircuit(3)
        qc.x(0).cx(0, 1).ccx(0, 1, 2)
        assert qc.two_qubit_gate_count() == 2

    def test_has_measurements(self):
        qc = QuantumCircuit(1, 1)
        assert not qc.has_measurements()
        qc.measure(0, 0)
        assert qc.has_measurements()

    def test_gates_excludes_barriers_and_measures(self):
        qc = QuantumCircuit(2, 2)
        qc.x(0)
        qc.barrier()
        qc.measure(0, 0)
        assert len(qc.gates()) == 1
        assert qc.size() == 1


class TestTransformations:
    def test_copy_is_independent(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        other = qc.copy()
        other.x(0)
        assert len(qc) == 1
        assert len(other) == 2

    def test_compose_identity_mapping(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        combined = a.compose(b)
        assert [inst.name for inst in combined] == ["h", "cx"]

    def test_compose_with_qubit_map(self):
        a = QuantumCircuit(3)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        combined = a.compose(b, qubits=[2, 0])
        assert combined[0].qubits == (2, 0)

    def test_compose_rejects_bad_map(self):
        a = QuantumCircuit(2)
        b = QuantumCircuit(2)
        with pytest.raises(ValueError):
            a.compose(b, qubits=[0])

    def test_inverse_reverses_and_inverts(self):
        qc = QuantumCircuit(2)
        qc.h(0).s(0).cx(0, 1)
        inv = qc.inverse()
        assert [inst.name for inst in inv] == ["cx", "sdg", "h"]

    def test_inverse_rejects_measured(self):
        qc = QuantumCircuit(1, 1)
        qc.x(0).measure(0, 0)
        with pytest.raises(ValueError):
            qc.inverse()

    def test_remove_final_measurements(self):
        qc = QuantumCircuit(1, 1)
        qc.x(0).measure(0, 0)
        bare = qc.remove_final_measurements()
        assert not bare.has_measurements()
        assert bare.size() == 1

    def test_remap_qubits(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        remapped = qc.remap_qubits({0: 3, 1: 1})
        assert remapped.num_qubits == 4
        assert remapped[0].qubits == (3, 1)

    def test_repeat(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        assert qc.repeat(3).size() == 3
        assert qc.repeat(0).size() == 0

    def test_measure_all_grows_clbits(self):
        qc = QuantumCircuit(3)
        qc.measure_all()
        assert qc.num_clbits == 3
        assert sum(1 for i in qc if i.is_measure) == 3

    def test_from_instructions(self):
        insts = [Instruction(XGate(), (0,)), Instruction(CXGate(), (0, 1))]
        qc = QuantumCircuit.from_instructions(insts, num_qubits=2)
        assert len(qc) == 2

    def test_equality(self):
        a = QuantumCircuit(1)
        a.x(0)
        b = QuantumCircuit(1)
        b.x(0)
        assert a == b
        b.x(0)
        assert a != b
