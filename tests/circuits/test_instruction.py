"""Tests for the Instruction value object."""

import pytest

from repro.circuits.gates import CXGate, Measure, XGate
from repro.circuits.instruction import Instruction


class TestValidation:
    def test_arity_checked(self):
        with pytest.raises(ValueError):
            Instruction(CXGate(), (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Instruction(CXGate(), (1, 1))

    def test_negative_qubits_rejected(self):
        with pytest.raises(ValueError):
            Instruction(XGate(), (-1,))

    def test_measure_requires_clbit(self):
        with pytest.raises(ValueError):
            Instruction(Measure(), (0,))
        inst = Instruction(Measure(), (0,), (0,))
        assert inst.is_measure


class TestBehaviour:
    def test_immutable(self):
        inst = Instruction(XGate(), (0,))
        with pytest.raises(AttributeError):
            inst.qubits = (1,)

    def test_flags(self):
        gate = Instruction(XGate(), (0,))
        assert gate.is_gate and not gate.is_measure and not gate.is_barrier

    def test_remap_with_dict(self):
        inst = Instruction(CXGate(), (0, 1))
        assert inst.remap({0: 5, 1: 2}).qubits == (5, 2)

    def test_remap_with_callable(self):
        inst = Instruction(CXGate(), (0, 1))
        assert inst.remap(lambda q: q + 10).qubits == (10, 11)

    def test_equality_and_hash(self):
        a = Instruction(XGate(), (0,))
        b = Instruction(XGate(), (0,))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Instruction(XGate(), (1,))
