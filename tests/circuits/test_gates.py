"""Unit tests for the gate library."""

import math

import numpy as np
import pytest

from repro.circuits.gates import (
    Barrier,
    CCXGate,
    CXGate,
    CZGate,
    GATE_REGISTRY,
    HGate,
    IGate,
    MCXGate,
    Measure,
    PhaseGate,
    RXGate,
    RYGate,
    RZGate,
    SdgGate,
    SGate,
    SwapGate,
    SXGate,
    TdgGate,
    TGate,
    U1Gate,
    U2Gate,
    U3Gate,
    UnitaryGate,
    XGate,
    YGate,
    ZGate,
    controlled_matrix,
    gate_from_name,
    standard_gate_names,
)


def _all_standard_gates():
    gates = []
    for name in standard_gate_names():
        params = {
            "rx": [0.3], "ry": [0.7], "rz": [1.1], "p": [0.5],
            "u1": [0.4], "u2": [0.2, 0.9], "u3": [0.3, 0.5, 0.7],
            "crz": [0.6], "cp": [0.8],
        }.get(name, [])
        gates.append(gate_from_name(name, params))
    return gates


class TestUnitarity:
    @pytest.mark.parametrize(
        "gate", _all_standard_gates(), ids=lambda g: g.name
    )
    def test_every_registered_gate_is_unitary(self, gate):
        mat = gate.matrix
        identity = np.eye(mat.shape[0])
        assert np.allclose(mat @ mat.conj().T, identity, atol=1e-10)

    @pytest.mark.parametrize(
        "gate", _all_standard_gates(), ids=lambda g: g.name
    )
    def test_inverse_matrix_is_adjoint(self, gate):
        inv = gate.inverse()
        assert np.allclose(
            inv.matrix, gate.matrix.conj().T, atol=1e-10
        )

    def test_matrix_dimensions_match_arity(self):
        for gate in _all_standard_gates():
            assert gate.matrix.shape == (
                2 ** gate.num_qubits,
                2 ** gate.num_qubits,
            )

    def test_matrix_is_readonly(self):
        mat = XGate().matrix
        with pytest.raises(ValueError):
            mat[0, 0] = 5


class TestSpecificMatrices:
    def test_x_matrix(self):
        assert np.allclose(XGate().matrix, [[0, 1], [1, 0]])

    def test_hadamard_squares_to_identity(self):
        h = HGate().matrix
        assert np.allclose(h @ h, np.eye(2), atol=1e-12)

    def test_s_squared_is_z(self):
        s = SGate().matrix
        assert np.allclose(s @ s, ZGate().matrix)

    def test_t_squared_is_s(self):
        t = TGate().matrix
        assert np.allclose(t @ t, SGate().matrix)

    def test_sx_squared_is_x(self):
        sx = SXGate().matrix
        assert np.allclose(sx @ sx, XGate().matrix, atol=1e-12)

    def test_cx_flips_when_control_set(self):
        # |10> (control=1, target=0) -> |11>
        cx = CXGate().matrix
        state = np.zeros(4)
        state[2] = 1.0  # |q0 q1> = |10> with first qubit MSB
        out = cx @ state
        assert np.allclose(out, [0, 0, 0, 1])

    def test_cx_identity_when_control_clear(self):
        cx = CXGate().matrix
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        assert np.allclose(cx @ state, state)

    def test_swap_exchanges_basis_states(self):
        swap = SwapGate().matrix
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        out = swap @ state
        expected = np.zeros(4)
        expected[2] = 1.0  # |10>
        assert np.allclose(out, expected)

    def test_ccx_is_controlled_cx(self):
        assert np.allclose(
            CCXGate().matrix, controlled_matrix(CXGate().matrix)
        )

    def test_u2_equals_u3_with_pi_over_2(self):
        u2 = U2Gate([0.3, 0.8])
        u3 = U3Gate([math.pi / 2, 0.3, 0.8])
        assert np.allclose(u2.matrix, u3.matrix, atol=1e-12)

    def test_u1_equals_phase(self):
        assert np.allclose(
            U1Gate([0.7]).matrix, PhaseGate([0.7]).matrix
        )

    def test_rz_is_u1_up_to_phase(self):
        rz = RZGate([0.9]).matrix
        u1 = U1Gate([0.9]).matrix
        ratio = u1[0, 0] / rz[0, 0]
        assert np.allclose(rz * ratio, u1, atol=1e-12)


class TestSelfInverse:
    @pytest.mark.parametrize("cls", [XGate, YGate, ZGate, HGate, CXGate,
                                     CZGate, SwapGate, CCXGate, IGate])
    def test_self_inverse_gates(self, cls):
        assert cls().is_self_inverse()

    @pytest.mark.parametrize("cls", [SGate, TGate])
    def test_non_self_inverse_gates(self, cls):
        assert not cls().is_self_inverse()

    def test_rotation_inverse_negates_angle(self):
        for cls in (RXGate, RYGate, RZGate):
            gate = cls([0.37])
            assert gate.inverse().params == (-0.37,)

    def test_s_inverse_is_sdg(self):
        assert isinstance(SGate().inverse(), SdgGate)
        assert isinstance(SdgGate().inverse(), SGate)
        assert isinstance(TGate().inverse(), TdgGate)

    def test_u3_inverse_composes_to_identity(self):
        gate = U3Gate([0.3, 0.5, 0.7])
        product = gate.inverse().matrix @ gate.matrix
        assert np.allclose(product, np.eye(2), atol=1e-10)


class TestMCX:
    def test_mcx_zero_controls_is_x(self):
        assert np.allclose(MCXGate(0).matrix, XGate().matrix)
        assert MCXGate(0).name == "x"

    def test_mcx_one_control_is_cx(self):
        assert np.allclose(MCXGate(1).matrix, CXGate().matrix)
        assert MCXGate(1).name == "cx"

    def test_mcx_two_controls_is_ccx(self):
        assert np.allclose(MCXGate(2).matrix, CCXGate().matrix)

    def test_mcx_three_controls_flips_only_all_ones(self):
        mat = MCXGate(3).matrix
        expected = np.eye(16)
        expected[[14, 15]] = expected[[15, 14]]
        assert np.allclose(mat, expected)

    def test_mcx_negative_controls_rejected(self):
        with pytest.raises(ValueError):
            MCXGate(-1)

    def test_mcx_from_name(self):
        gate = gate_from_name("mcx5")
        assert gate.num_qubits == 6

    def test_mcx_copy_preserves_controls(self):
        gate = MCXGate(4)
        assert gate.copy().num_controls == 4


class TestUnitaryGate:
    def test_accepts_unitary(self):
        gate = UnitaryGate(HGate().matrix, label="had")
        assert gate.name == "had"
        assert gate.num_qubits == 1

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            UnitaryGate(np.array([[1, 0], [0, 2]]))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            UnitaryGate(np.eye(3))

    def test_inverse_roundtrip(self):
        gate = UnitaryGate(U3Gate([0.2, 0.4, 0.6]).matrix)
        product = gate.inverse().matrix @ gate.matrix
        assert np.allclose(product, np.eye(2), atol=1e-10)

    def test_equality_by_matrix(self):
        a = UnitaryGate(HGate().matrix)
        b = UnitaryGate(HGate().matrix)
        assert a == b


class TestRegistry:
    def test_every_name_constructs(self):
        assert len(standard_gate_names()) == len(GATE_REGISTRY)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            gate_from_name("nope")

    def test_wrong_param_count_raises(self):
        with pytest.raises(ValueError):
            gate_from_name("rx")
        with pytest.raises(ValueError):
            gate_from_name("x", [0.1])

    def test_equality_and_hash(self):
        assert XGate() == XGate()
        assert RXGate([0.5]) == RXGate([0.5])
        assert RXGate([0.5]) != RXGate([0.6])
        assert hash(RXGate([0.5])) == hash(RXGate([0.5]))
        assert XGate() != YGate()


class TestNonUnitaryOps:
    def test_barrier_equality(self):
        assert Barrier(3) == Barrier(3)
        assert Barrier(3) != Barrier(2)

    def test_measure_equality(self):
        assert Measure() == Measure()
        assert Measure().num_qubits == 1
