"""The adversary subsystem: registry, matching streams, oracle,
prefilters, and the two brute-force attacks."""

import math
from itertools import islice

import pytest

from repro.attacks import (
    Attack,
    CollusionProblem,
    EquivalenceOracle,
    MismatchedWidthBruteForce,
    SameWidthBruteForce,
    SearchOptions,
    StructuralPrefilter,
    available_attacks,
    find_mismatched_split,
    get_attack,
    iter_same_width_matchings,
    iter_subset_matchings,
    problem_from_saki,
    problem_from_split,
    recombine_candidate,
    register_attack,
    same_width_matching_count,
    select_attack,
    subset_matching_count,
    unregister_attack,
)
from repro.attacks.oracle import pad_table
from repro.baselines import saki_split
from repro.circuits import QuantumCircuit
from repro.core import (
    BruteForceCollusionAttack,
    insert_random_pairs,
    interlocking_split,
)
from repro.revlib import benchmark_circuit
from repro.synth import simulate_reversible


def mismatched_split(benchmark="4gt13", insertion_seed=3):
    """A real interlocking split whose segments expose different widths."""
    insertion = insert_random_pairs(
        benchmark_circuit(benchmark), gate_limit=4, seed=insertion_seed
    )
    split = find_mismatched_split(insertion)
    if split is None:
        pytest.skip("no mismatched split found")
    return split


class TestRegistry:
    def test_builtin_attacks_present(self):
        assert set(available_attacks()) >= {"same-width", "mismatched"}

    def test_builtins_satisfy_protocol(self):
        for name in available_attacks():
            assert isinstance(get_attack(name), Attack)

    def test_get_unknown_name(self):
        with pytest.raises(KeyError, match="unknown attack"):
            get_attack("sat-solver")

    def test_register_and_unregister(self):
        @register_attack
        class FakeAttack:
            name = "fake"

            def supports(self, problem):
                return False

            def search_space(self, problem):
                return 0

            def search(self, problem, options=None):
                raise NotImplementedError

        try:
            assert "fake" in available_attacks()
            with pytest.raises(ValueError, match="already registered"):
                register_attack(FakeAttack())
        finally:
            unregister_attack("fake")
        assert "fake" not in available_attacks()

    def test_register_requires_name(self):
        class Nameless:
            pass

        with pytest.raises(ValueError, match="name"):
            register_attack(Nameless())

    def test_select_prefers_smaller_space(self):
        circuit = benchmark_circuit("4gt13")
        same = problem_from_saki(saki_split(circuit, seed=1))
        # equal widths: n! < the subset space, so the bijection attack wins
        assert select_attack(same).name == "same-width"
        mismatched = problem_from_split(mismatched_split())
        assert select_attack(mismatched).name == "mismatched"

    def test_select_rejects_bijections_when_truth_needs_ancillas(self):
        """Equal segment widths with a partial-overlap ground truth:
        the reference frame is wider than the segments, no bijection
        contains the truth, so auto-dispatch must not pick the n!
        attack (which would falsely report failure)."""
        seg1 = QuantumCircuit(2)
        seg1.cx(0, 1).x(0)
        seg2 = QuantumCircuit(2)
        seg2.x(0).h(1)
        # true recombination: seg2 qubit 0 attaches to seg1 qubit 1,
        # seg2 qubit 1 lands on a fresh ancilla (width 3)
        reference = recombine_candidate(seg1, seg2, {0: 1, 1: 2}, 3)
        problem = CollusionProblem(seg1, seg2, reference)
        assert not get_attack("same-width").supports(problem)
        chosen = select_attack(problem)
        assert chosen.name == "mismatched"
        assert chosen.search(
            problem, SearchOptions(prefilter=False)
        ).success
        # direct registry use fails loudly instead of reporting a
        # false "attack fails"
        with pytest.raises(ValueError, match="ancillas"):
            get_attack("same-width").search(problem)


class TestMatchingStreams:
    def test_same_width_count_and_order(self):
        matchings = list(iter_same_width_matchings(3))
        assert len(matchings) == math.factorial(3)
        assert [m.index for m in matchings] == list(range(6))
        assert matchings[0].mapping == ((0, 0), (1, 1), (2, 2))
        assert all(m.num_qubits == 3 for m in matchings)

    @pytest.mark.parametrize("n1,n2", [(0, 0), (1, 3), (3, 1), (4, 2),
                                       (3, 3), (4, 5)])
    def test_subset_count_matches_eq1_inner_sum(self, n1, n2):
        expected = sum(
            math.comb(n1, j) * math.comb(n2, j) * math.factorial(j)
            for j in range(min(n1, n2) + 1)
        )
        assert subset_matching_count(n1, n2) == expected
        assert sum(1 for _ in iter_subset_matchings(n1, n2)) == expected

    def test_subset_stream_is_lazy(self):
        # 12x12 has > 10^13 candidates; taking 5 must not enumerate them
        stream = iter_subset_matchings(12, 12)
        first5 = list(islice(stream, 5))
        assert [m.index for m in first5] == list(range(5))

    def test_subset_indices_are_canonical(self):
        first = list(iter_subset_matchings(3, 2))
        second = list(iter_subset_matchings(3, 2))
        assert first == second
        assert [m.index for m in first] == list(range(len(first)))

    @pytest.mark.parametrize("n1,n2", [(3, 2), (4, 4), (2, 5)])
    def test_fast_forward_matches_full_stream(self, n1, n2):
        """start=k skips block-arithmetically, never re-enumerating
        the prefix — and lands on exactly the same candidates."""
        full = list(iter_subset_matchings(n1, n2))
        for start in (0, 1, 7, len(full) // 2, len(full) - 1, len(full)):
            assert list(iter_subset_matchings(n1, n2, start=start)) == (
                full[start:]
            )

    def test_same_width_fast_forward(self):
        full = list(iter_same_width_matchings(4))
        for start in (0, 5, 23, 24):
            assert list(
                iter_same_width_matchings(4, start=start)
            ) == full[start:]

    def test_permutation_unranking_matches_itertools(self):
        from itertools import permutations as it_permutations

        from repro.attacks.matching import permutations_from

        items = (0, 2, 5, 7)
        full = list(it_permutations(items))
        for start in range(len(full) + 1):
            assert list(permutations_from(items, start)) == full[start:]

    def test_unmatched_qubits_take_ascending_ancillas(self):
        # j = 0 candidate: every seg-2 qubit lands on a fresh ancilla
        matching = next(iter_subset_matchings(3, 2))
        assert matching.overlap == 0
        assert matching.mapping == ((0, 3), (1, 4))
        assert matching.num_qubits == 5

    def test_overlap_reduces_width(self):
        widths = {
            m.overlap: m.num_qubits for m in iter_subset_matchings(3, 2)
        }
        assert widths == {0: 5, 1: 4, 2: 3}


class TestOracle:
    def test_pad_table_passthrough_bits(self):
        table = simulate_reversible(benchmark_circuit("4gt13")).table
        padded = pad_table(table, 4, 6)
        assert len(padded) == 64
        for x in range(64):
            assert padded[x] & ~0xF == x & ~0xF
            assert padded[x] & 0xF == table[x & 0xF]

    def test_truth_table_and_unitary_paths_agree(self):
        circuit = benchmark_circuit("4gt13")
        tt = EquivalenceOracle(circuit, use_truth_table=True)
        un = EquivalenceOracle(circuit, use_truth_table=False)
        wrong = circuit.copy()
        wrong.x(0)
        wider = QuantumCircuit(6)
        wider.extend(circuit.instructions)
        for candidate in (circuit, wrong, wider):
            assert tt.check(candidate) == un.check(candidate)
        assert tt.check(wider)
        assert not tt.check(wrong)

    def test_truth_table_rejected_for_nonreversible_reference(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        with pytest.raises(ValueError, match="reversible"):
            EquivalenceOracle(qc, use_truth_table=True)

    def test_measured_reference_rejected(self):
        qc = QuantumCircuit(1).measure_all()
        with pytest.raises(ValueError, match="measurement-free"):
            EquivalenceOracle(qc)


class TestPrefilter:
    def test_true_matching_always_admitted(self):
        split = mismatched_split()
        problem = problem_from_split(split)
        prefilter = StructuralPrefilter(
            problem.segment1, problem.segment2, problem.oracle
        )
        true_mapping = tuple(
            sorted(split.boundary().true_matching().items())
        )
        n1, n2 = problem.widths
        admitted = [
            m
            for m in iter_subset_matchings(n1, n2)
            if prefilter.admits(m)
        ]
        assert any(m.mapping == true_mapping for m in admitted)
        # and it actually prunes something on a real split
        assert len(admitted) < subset_matching_count(n1, n2)

    def test_prefilter_never_changes_success(self):
        problem = problem_from_split(mismatched_split())
        attack = get_attack("mismatched")
        full = attack.search(problem, SearchOptions(prefilter=False))
        pruned = attack.search(problem, SearchOptions(prefilter=True))
        assert full.success and pruned.success
        assert pruned.candidates_tried + pruned.pruned == full.candidates_tried


class TestMismatchedAttack:
    """The paper's defining scenario, executed end to end."""

    def test_recovers_original_from_mismatched_split(self):
        split = mismatched_split()
        assert split.mismatched_qubits
        problem = problem_from_split(split)
        outcome = get_attack("mismatched").search(
            problem, SearchOptions(prefilter=False)
        )
        assert outcome.success
        # the ground-truth matching is among the winners
        true_mapping = tuple(
            sorted(split.boundary().true_matching().items())
        )
        assert any(
            r.mapping == true_mapping and r.functional_match
            for r in outcome.results
        )

    def test_tried_count_equals_candidate_count_without_prefilter(self):
        split = mismatched_split()
        problem = problem_from_split(split)
        attack = get_attack("mismatched")
        outcome = attack.search(problem, SearchOptions(prefilter=False))
        n1, n2 = problem.widths
        assert outcome.candidates_tried == attack.search_space(problem)
        assert outcome.candidates_tried == subset_matching_count(n1, n2)
        # ... which is the legacy counting API's number too
        legacy = BruteForceCollusionAttack(
            problem.segment1, problem.segment2
        )
        assert outcome.candidates_tried == legacy.candidate_count()

    def test_oracle_reference_computes_original_function(self):
        """The generous oracle's frame is the original circuit
        relabelled by the ground-truth embedding."""
        split = mismatched_split()
        problem = problem_from_split(split)
        boundary = split.boundary()
        original = split.insertion.original
        # original -> candidate-frame injection: seg-1 actives keep
        # their compact slot, seg-2-only actives follow the ancilla
        # assignment of the true matching
        inv1 = {
            orig: compact
            for compact, orig in
            split.segment1.compact_to_original.items()
        }
        inv2 = {
            orig: compact
            for compact, orig in
            split.segment2.compact_to_original.items()
        }
        true_mapping = boundary.true_matching()
        frame = {}
        next_slot = boundary.candidate_width
        for q in range(original.num_qubits):
            if q in inv1:
                frame[q] = inv1[q]
            elif q in inv2:
                frame[q] = true_mapping[inv2[q]]
            else:  # idle in the obfuscated circuit
                frame[q] = next_slot
                next_slot += 1
        relabelled = original.remap_qubits(frame, next_slot)
        width = max(next_slot, boundary.candidate_width)
        assert pad_table(
            simulate_reversible(relabelled).table, next_slot, width
        ) == pad_table(
            simulate_reversible(problem.oracle).table,
            boundary.candidate_width,
            width,
        )

    def test_search_space_cap_enforced(self):
        problem = problem_from_split(mismatched_split())
        with pytest.raises(ValueError, match="exceed the cap"):
            get_attack("mismatched").search(
                problem, SearchOptions(max_candidates=3)
            )

    def test_early_exit_finds_first_canonical_match(self):
        problem = problem_from_split(mismatched_split())
        attack = get_attack("mismatched")
        full = attack.search(problem, SearchOptions(prefilter=False))
        early = attack.search(
            problem,
            SearchOptions(prefilter=False, early_exit=True, chunk_size=7),
        )
        assert early.success
        assert early.first_match.index == full.first_match.index
        assert early.candidates_tried <= full.candidates_tried

    def test_handles_equal_width_problems_too(self):
        """No ValueError path left: the subset matcher covers any
        width pair, equal widths included."""
        circuit = benchmark_circuit("4gt13")
        problem = problem_from_saki(saki_split(circuit, seed=1))
        outcome = get_attack("mismatched").search(
            problem, SearchOptions(prefilter=True)
        )
        assert outcome.success


class TestSameWidthAttack:
    def test_bit_identical_to_legacy_attack(self):
        """The registered attack reproduces the legacy executor's
        per-candidate verdicts in the same canonical order."""
        circuit = benchmark_circuit("4gt13")
        split = saki_split(circuit, seed=1)
        legacy_results, legacy_matches = BruteForceCollusionAttack(
            split.segment1, split.segment2
        ).run(circuit)
        outcome = get_attack("same-width").search(
            problem_from_saki(split),
            SearchOptions(prefilter=False, record_all=True),
        )
        assert outcome.matches == legacy_matches
        assert outcome.candidates_tried == len(legacy_results)
        for record, legacy in zip(outcome.results, legacy_results):
            assert record.mapping_dict() == legacy.mapping
            assert record.functional_match == legacy.functional_match

    def test_regression_pinned_counts(self):
        """Same-width results pinned: 4gt13 / saki seed 1 has exactly
        2 of 4! matchings recovering the function."""
        circuit = benchmark_circuit("4gt13")
        outcome = get_attack("same-width").search(
            problem_from_saki(saki_split(circuit, seed=1)),
            SearchOptions(prefilter=False),
        )
        assert outcome.search_space == math.factorial(4)
        assert outcome.candidates_tried == 24
        assert outcome.matches == 2
        assert outcome.first_match.index == 0  # identity matching wins

    def test_rejects_mismatched_widths(self):
        problem = problem_from_split(mismatched_split())
        attack = get_attack("same-width")
        assert not attack.supports(problem)
        with pytest.raises(ValueError, match="equal segment widths"):
            attack.search(problem)

    def test_swap_network_split_rejected(self):
        circuit = benchmark_circuit("4gt13")
        split = saki_split(circuit, seed=1, swap_network=True)
        with pytest.raises(ValueError, match="swap-network"):
            problem_from_saki(split)


class TestCollusionProblem:
    def test_measured_segments_rejected(self):
        qc = QuantumCircuit(2).measure_all()
        with pytest.raises(ValueError, match="measurement-free"):
            CollusionProblem(qc, qc, QuantumCircuit(2))

    def test_recombine_candidate_width_and_order(self):
        seg1 = QuantumCircuit(2)
        seg1.cx(0, 1)
        seg2 = QuantumCircuit(2)
        seg2.x(0).cx(0, 1)
        candidate = recombine_candidate(seg1, seg2, {0: 1, 1: 2}, 3)
        assert candidate.num_qubits == 3
        assert [
            (inst.name, inst.qubits) for inst in candidate
        ] == [("cx", (0, 1)), ("x", (1,)), ("cx", (1, 2))]

    def test_boundary_metadata_matches_segments(self):
        split = mismatched_split()
        boundary = split.boundary()
        assert boundary.seg1_active == tuple(split.segment1.active_qubits)
        assert boundary.seg2_active == tuple(split.segment2.active_qubits)
        assert set(boundary.shared_qubits) == (
            set(split.segment1.active_qubits)
            & set(split.segment2.active_qubits)
        )
        for c1, c2 in boundary.crossing_pairs:
            assert (
                split.segment1.compact_to_original[c1]
                == split.segment2.compact_to_original[c2]
            )
        n1, n2 = boundary.widths
        mapping = boundary.true_matching()
        assert sorted(mapping) == list(range(n2))
        assert boundary.candidate_width == n1 + n2 - len(
            boundary.shared_qubits
        )
