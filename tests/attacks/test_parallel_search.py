"""Process-pool search: bit-identity with sequential, early exit,
dispatch-order shuffling."""

import pytest

from repro.attacks import (
    SearchOptions,
    find_mismatched_split,
    get_attack,
    problem_from_saki,
    problem_from_split,
)
from repro.baselines import saki_split
from repro.core import insert_random_pairs
from repro.revlib import benchmark_circuit


def outcome_key(outcome):
    """Everything observable about a search outcome."""
    return (
        outcome.attack,
        outcome.search_space,
        outcome.candidates_tried,
        outcome.pruned,
        outcome.matches,
        outcome.early_exit,
        tuple(outcome.results),
    )


@pytest.fixture(scope="module")
def mismatched_problem():
    insertion = insert_random_pairs(
        benchmark_circuit("4mod5"), gate_limit=4, seed=3
    )
    split = find_mismatched_split(insertion)
    if split is None:
        pytest.skip("no mismatched split found")
    return problem_from_split(split)


class TestParallelBitIdentity:
    def test_jobs_equal_sequential_full_search(self, mismatched_problem):
        attack = get_attack("mismatched")
        base = SearchOptions(prefilter=False, chunk_size=16)
        sequential = attack.search(mismatched_problem, base)
        parallel = attack.search(
            mismatched_problem,
            SearchOptions(prefilter=False, chunk_size=16, jobs=3),
        )
        assert outcome_key(sequential) == outcome_key(parallel)
        assert sequential.candidates_tried == sequential.search_space

    def test_jobs_equal_sequential_with_prefilter_and_recording(
        self, mismatched_problem
    ):
        attack = get_attack("mismatched")
        sequential = attack.search(
            mismatched_problem,
            SearchOptions(chunk_size=8, record_all=True),
        )
        parallel = attack.search(
            mismatched_problem,
            SearchOptions(chunk_size=8, record_all=True, jobs=2),
        )
        assert outcome_key(sequential) == outcome_key(parallel)
        # record_all keeps every checked candidate, in canonical order
        assert len(sequential.results) == sequential.candidates_tried
        indices = [record.index for record in sequential.results]
        assert indices == sorted(indices)

    def test_seeded_dispatch_shuffle_changes_nothing_when_full(
        self, mismatched_problem
    ):
        attack = get_attack("mismatched")
        plain = attack.search(
            mismatched_problem, SearchOptions(prefilter=False, chunk_size=8)
        )
        shuffled = attack.search(
            mismatched_problem,
            SearchOptions(prefilter=False, chunk_size=8, seed=1234, jobs=2),
        )
        assert outcome_key(plain) == outcome_key(shuffled)

    def test_early_exit_parallel_equals_sequential(self, mismatched_problem):
        attack = get_attack("mismatched")
        for seed in (None, 42):
            sequential = attack.search(
                mismatched_problem,
                SearchOptions(
                    prefilter=False, chunk_size=4, early_exit=True,
                    seed=seed,
                ),
            )
            parallel = attack.search(
                mismatched_problem,
                SearchOptions(
                    prefilter=False, chunk_size=4, early_exit=True,
                    seed=seed, jobs=3,
                ),
            )
            assert outcome_key(sequential) == outcome_key(parallel)
            assert sequential.success

    def test_same_width_parallel_identity(self):
        circuit = benchmark_circuit("4gt13")
        problem = problem_from_saki(saki_split(circuit, seed=1))
        attack = get_attack("same-width")
        sequential = attack.search(
            problem,
            SearchOptions(prefilter=False, record_all=True, chunk_size=5),
        )
        parallel = attack.search(
            problem,
            SearchOptions(
                prefilter=False, record_all=True, chunk_size=5, jobs=2
            ),
        )
        assert outcome_key(sequential) == outcome_key(parallel)

    def test_invalid_options_rejected(self, mismatched_problem):
        attack = get_attack("mismatched")
        with pytest.raises(ValueError, match="jobs"):
            attack.search(mismatched_problem, SearchOptions(jobs=0))
        with pytest.raises(ValueError, match="chunk_size"):
            attack.search(mismatched_problem, SearchOptions(chunk_size=0))
