"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.circuits import from_qasm
from repro.cli import main
from repro.revlib import benchmark_circuit, write_real
from repro.synth import simulate_reversible


@pytest.fixture()
def real_file(tmp_path):
    path = tmp_path / "4gt13.real"
    path.write_text(write_real(benchmark_circuit("4gt13")))
    return path


class TestProtectRestore:
    def test_roundtrip(self, tmp_path, real_file, capsys):
        prefix = tmp_path / "prot"
        code = main(
            ["protect", str(real_file), "-o", str(prefix), "--seed", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "random pair" in out

        metadata = json.loads(
            (tmp_path / "prot.tetrislock.json").read_text()
        )
        assert metadata["num_qubits"] == 4
        assert Path(metadata["segment1"]["path"]).exists()
        assert Path(metadata["segment2"]["path"]).exists()
        # depth preserved end to end
        assert metadata["depth_obfuscated"] == metadata["depth_original"]

        restored_path = tmp_path / "restored.qasm"
        code = main(
            [
                "restore",
                str(tmp_path / "prot.tetrislock.json"),
                "-o",
                str(restored_path),
            ]
        )
        assert code == 0
        restored = from_qasm(restored_path.read_text())
        assert simulate_reversible(restored) == simulate_reversible(
            benchmark_circuit("4gt13")
        )

    def test_protect_qasm_input(self, tmp_path, capsys):
        from repro.circuits import to_qasm

        qasm_path = tmp_path / "circ.qasm"
        qasm_path.write_text(to_qasm(benchmark_circuit("4mod5")))
        code = main(
            ["protect", str(qasm_path), "-o", str(tmp_path / "p"),
             "--seed", "1"]
        )
        assert code == 0

    def test_segments_hide_function(self, tmp_path, real_file):
        main(["protect", str(real_file), "-o", str(tmp_path / "p"),
              "--seed", "5"])
        metadata = json.loads(
            (tmp_path / "p.tetrislock.json").read_text()
        )
        if metadata["inserted_pairs"] == 0:
            pytest.skip("no pairs inserted for this seed")
        seg2 = from_qasm(Path(metadata["segment2"]["path"]).read_text())
        # segment 2 alone is not the tail of the original circuit: it
        # contains uncancelled R gates
        assert seg2.size() > 0


class TestInspect:
    def test_inspect_output(self, real_file, capsys):
        code = main(["inspect", str(real_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "qubits: 4" in out
        assert "depth: 4" in out
        assert "empty slots" in out


class TestTranspileCommand:
    def test_reports_pass_timings_and_cache(self, real_file, capsys):
        from repro.transpiler import get_transpile_cache

        get_transpile_cache().clear()
        code = main(["transpile", str(real_file), "--level", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pass timings" in out
        assert "TranslateToBasis" in out
        assert "FuseSingleQubitRuns" in out
        assert "transpile cache" in out

    def test_second_run_hits_cache(self, real_file, capsys):
        from repro.transpiler import get_transpile_cache

        get_transpile_cache().clear()
        main(["transpile", str(real_file)])
        code = main(["transpile", str(real_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "from cache" in out
        assert "1 hit(s)" in out

    def test_no_transpile_cache_flag(self, real_file, capsys):
        from repro.transpiler import get_transpile_cache

        get_transpile_cache().clear()
        main(["transpile", str(real_file), "--no-transpile-cache"])
        code = main(["transpile", str(real_file), "--no-transpile-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "from cache" not in out
        assert "0 hit(s)" in out

    def test_line_coupling_and_trivial_layout(self, real_file, capsys):
        code = main(
            ["transpile", str(real_file), "--coupling", "line",
             "--layout", "trivial", "--size", "6",
             "--no-transpile-cache"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "swaps:" in out

    def test_too_small_device_fails_cleanly(self, real_file, capsys):
        code = main(
            ["transpile", str(real_file), "--coupling", "line",
             "--size", "2"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestAttackCommand:
    def test_mismatched_attack_succeeds(self, capsys):
        code = main(["attack", "--benchmark", "4gt13",
                     "--adversary", "mismatched", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "adversary: mismatched" in out
        assert "attack succeeds" in out

    def test_same_width_attack_with_jobs(self, capsys):
        code = main(["attack", "--benchmark", "4gt13",
                     "--adversary", "same-width", "--seed", "1",
                     "--jobs", "2", "--chunk-size", "5",
                     "--no-prefilter"])
        assert code == 0
        out = capsys.readouterr().out
        assert "24 tried, 0 pruned of 24 candidates" in out
        assert "attack succeeds" in out

    def test_auto_adversary_and_early_exit(self, capsys):
        code = main(["attack", "--benchmark", "4mod5", "--seed", "3",
                     "--early-exit"])
        assert code == 0
        out = capsys.readouterr().out
        assert "early exit" in out

    def test_list_adversaries(self, capsys):
        code = main(["attack", "--list-adversaries"])
        assert code == 0
        out = capsys.readouterr().out
        assert "same-width" in out and "mismatched" in out

    def test_over_cap_fails_cleanly(self, capsys):
        code = main(["attack", "--benchmark", "rd73",
                     "--adversary", "same-width",
                     "--max-candidates", "100"])
        assert code == 2
        assert "exceed the cap" in capsys.readouterr().err

    def test_unknown_benchmark_fails_cleanly(self, capsys):
        code = main(["attack", "--benchmark", "nosuchbench"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_circuit_file_fails_cleanly(self, capsys):
        code = main(["attack", "--circuit", "/nope/missing.qasm"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error" in err and "missing.qasm" in err

    def test_circuit_file_input(self, tmp_path, capsys):
        from repro.circuits import to_qasm
        from repro.revlib import benchmark_circuit

        path = tmp_path / "bench.qasm"
        path.write_text(to_qasm(benchmark_circuit("4gt13")))
        code = main(["attack", "--circuit", str(path), "--seed", "0"])
        assert code == 0
        assert "verdict" in capsys.readouterr().out


class TestExperimentShortcuts:
    def test_attack_complexity_shortcut(self, capsys):
        code = main(["attack-complexity"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Saki" in out


class TestExperimentCommand:
    def test_list(self, capsys):
        code = main(["experiment", "list"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("table1", "figure4", "sweep_gate_limit",
                     "ablation_insertion", "attack_complexity"):
            assert name in out
        assert "parameters:" in out

    def test_run_checkpoints_and_reports(self, tmp_path, capsys):
        store = str(tmp_path / "results")
        args = ["experiment", "run", "attack_complexity",
                "--set", "qubit_counts=[4,5]", "--set", "nmax_values=[5]",
                "--store", store, "--quiet"]
        code = main(args)
        assert code == 0
        out = capsys.readouterr().out
        assert "3 cell(s), 0 reused, 3 computed" in out
        assert "Saki" in out and "Brute-force" in out

        # resume: everything comes from the checkpoint
        code = main(["experiment", "resume", "attack_complexity",
                     "--set", "qubit_counts=[4,5]", "--set",
                     "nmax_values=[5]", "--store", store, "--quiet"])
        assert code == 0
        assert "3 reused, 0 computed" in capsys.readouterr().out

        # report renders from the store without recomputing
        code = main(["experiment", "report", "attack_complexity",
                     "--set", "qubit_counts=[4,5]", "--set",
                     "nmax_values=[5]", "--store", store])
        assert code == 0
        out = capsys.readouterr().out
        assert "Saki" in out and "Brute-force" in out

    def test_sharded_run_then_report(self, tmp_path, capsys):
        store = str(tmp_path / "results")
        base = ["--set", "qubit_counts=[4]", "--set", "nmax_values=[5,27]",
                "--store", store, "--quiet"]
        code = main(["experiment", "run", "attack_complexity",
                     "--shard", "0/2"] + base)
        assert code == 0
        assert "shard incomplete" in capsys.readouterr().out
        code = main(["experiment", "report", "attack_complexity"] + base[:-1])
        assert code == 1  # incomplete -> non-zero, resume hint on stderr
        assert "missing" in capsys.readouterr().err
        code = main(["experiment", "run", "attack_complexity",
                     "--shard", "1/2"] + base)
        assert code == 0
        assert "Brute-force" in capsys.readouterr().out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        code = main(["experiment", "run", "nope"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_parameter_fails_cleanly(self, capsys):
        code = main(["experiment", "run", "attack_complexity",
                     "--iterations", "3"])
        assert code == 2
        assert "no 'iterations' parameter" in capsys.readouterr().err


class TestCleanErrors:
    """protect/restore/inspect report bad input as exit-2, no traceback."""

    def test_protect_missing_file(self, capsys):
        assert main(["protect", "/no/such/file.qasm"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_protect_bad_qasm(self, tmp_path, capsys):
        bad = tmp_path / "bad.qasm"
        bad.write_text("this is not qasm")
        assert main(["protect", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_inspect_missing_file(self, capsys):
        assert main(["inspect", "/no/such/file.real"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_inspect_bad_qasm(self, tmp_path, capsys):
        bad = tmp_path / "bad.qasm"
        bad.write_text("qreg nonsense")
        assert main(["inspect", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_restore_missing_metadata(self, capsys):
        assert main(["restore", "/no/such/meta.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_restore_bad_json(self, tmp_path, capsys):
        meta = tmp_path / "m.json"
        meta.write_text("{broken")
        assert main(["restore", str(meta)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_restore_missing_key(self, tmp_path, capsys):
        meta = tmp_path / "m.json"
        meta.write_text('{"num_qubits": 4}')
        assert main(["restore", str(meta)]) == 2
        assert "missing key" in capsys.readouterr().err

    def test_restore_missing_segment_file(self, tmp_path, capsys):
        meta = tmp_path / "m.json"
        meta.write_text(json.dumps({
            "num_qubits": 4,
            "segment1": {"path": str(tmp_path / "gone.qasm"),
                         "active_qubits": [0, 1]},
            "segment2": {"path": str(tmp_path / "gone2.qasm"),
                         "active_qubits": [2, 3]},
        }))
        assert main(["restore", str(meta)]) == 2
        assert "error:" in capsys.readouterr().err


class TestServeSubmitCLI:
    """`repro submit` against an in-process service HTTP endpoint."""

    @pytest.fixture()
    def server_url(self):
        import threading

        from repro.service import JobService
        from repro.service.http import make_server

        service = JobService(workers=2).start()
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://127.0.0.1:{httpd.server_address[1]}"
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)
            service.shutdown(drain=False)

    def test_submit_simulate_and_cache_hit(
        self, server_url, real_file, capsys
    ):
        args = ["submit", "--url", server_url, "simulate", str(real_file),
                "--seed", "7", "--shots", "200"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["state"] == "done"
        assert first["cached"] is False
        assert sum(first["result"]["counts"]["counts"].values()) == 200
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cached"] is True
        assert second["result"] == first["result"]

    def test_submit_protect_and_status(self, server_url, real_file, capsys):
        assert main(["submit", "--url", server_url, "protect",
                     str(real_file), "--seed", "5"]) == 0
        view = json.loads(capsys.readouterr().out)
        assert view["state"] == "done"
        assert "OPENQASM" in view["result"]["segment1_qasm"]
        assert main(["submit", "--url", server_url, "status",
                     view["id"]]) == 0
        polled = json.loads(capsys.readouterr().out)
        assert polled["state"] == "done"

    def test_submit_no_wait(self, server_url, real_file, capsys):
        assert main(["submit", "--url", server_url, "--no-wait",
                     "simulate", str(real_file), "--seed", "1"]) == 0
        view = json.loads(capsys.readouterr().out)
        assert view["state"] in ("queued", "running", "done")

    def test_submit_unreachable_server(self, real_file, capsys):
        code = main(["submit", "--url", "http://127.0.0.1:9",
                     "simulate", str(real_file)])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_submit_missing_circuit_file(self, server_url, capsys):
        code = main(["submit", "--url", server_url, "simulate",
                     "/no/such.qasm"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
