"""Edge cases for the lightweight analyses: empty circuits, single gates,
zero-duration calibration entries."""

import math

import pytest

from repro.analysis import (
    boundary_detection_score,
    estimate_success_probability,
    schedule_circuit,
    window_divergence_profile,
)
from repro.circuits import QuantumCircuit
from repro.noise.backend import Backend, GateCalibration, QubitCalibration


def _flat_backend(n, duration_us):
    """A two-qubit-line backend whose every gate takes *duration_us*."""
    qubits = [
        QubitCalibration(
            t1_us=80.0, t2_us=70.0, readout_p10=0.02, readout_p01=0.01
        )
        for _ in range(n)
    ]
    edges = [(i, i + 1) for i in range(n - 1)]
    return Backend(
        name=f"flat-{n}",
        num_qubits=n,
        coupling_edges=edges,
        basis_gates=["id", "rz", "sx", "x", "cx"],
        qubits=qubits,
        single_qubit_gates={
            i: GateCalibration(error=3e-4, duration_us=duration_us)
            for i in range(n)
        },
        two_qubit_gates={
            edge: GateCalibration(error=8e-3, duration_us=duration_us)
            for edge in edges
        },
    )


class TestScheduleEdgeCases:
    def test_empty_circuit_schedules_to_zero(self):
        schedule = schedule_circuit(QuantumCircuit(3))
        assert schedule.total_duration_us == 0.0
        assert schedule.spans == []
        assert schedule.qubit_idle_us(0) == 0.0

    def test_single_gate_circuit(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        backend = _flat_backend(2, duration_us=0.25)
        schedule = schedule_circuit(qc, backend)
        assert len(schedule.spans) == 1
        span = schedule.spans[0]
        assert span.start_us == 0.0
        assert span.duration_us == 0.25
        assert span.end_us == 0.25
        assert schedule.total_duration_us == 0.25

    def test_zero_duration_calibration_entries(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).x(1)
        backend = _flat_backend(2, duration_us=0.0)
        schedule = schedule_circuit(qc, backend)
        assert schedule.total_duration_us == 0.0
        assert all(s.duration_us == 0.0 for s in schedule.spans)
        # with zero durations there is no decoherence: success probability
        # reduces to gate errors x readout alone
        p = estimate_success_probability(qc, backend)
        expected = (
            (1 - 3e-4) * (1 - 8e-3) * (1 - 3e-4)
            * (1 - 0.015) ** 2  # average readout error per measured qubit
        )
        assert p == pytest.approx(expected, rel=1e-9)

    def test_measure_only_circuit_has_no_spans(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        schedule = schedule_circuit(qc)
        assert schedule.spans == []
        assert schedule.total_duration_us == 0.0

    def test_success_probability_empty_circuit_is_readout_only(self):
        backend = _flat_backend(2, duration_us=0.1)
        p = estimate_success_probability(
            QuantumCircuit(2), backend, measured_qubits=[0]
        )
        # T=0 so exp(-T/T1)=1; only qubit 0's readout remains
        assert p == pytest.approx(1 - 0.015, rel=1e-9)


class TestLeakageEdgeCases:
    def test_empty_circuit_profile_is_empty(self):
        assert window_divergence_profile(QuantumCircuit(2)) == []

    def test_single_gate_profile_is_flat_zero(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        assert window_divergence_profile(qc) == [0.0]

    def test_boundary_score_requires_boundaries(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        with pytest.raises(ValueError):
            boundary_detection_score(qc, [])

    def test_boundary_score_zero_on_empty_profile(self):
        assert boundary_detection_score(QuantumCircuit(2), [0]) == 0.0

    def test_boundary_score_zero_on_flat_profile(self):
        # a homogeneous circuit has an all-zero divergence profile
        qc = QuantumCircuit(1)
        for _ in range(8):
            qc.h(0)
        assert boundary_detection_score(qc, [4]) == 0.0
