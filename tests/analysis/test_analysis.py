"""Tests for leakage analysis and schedule/fidelity estimation."""

import pytest

from repro.analysis import (
    boundary_detection_score,
    estimate_success_probability,
    gate_histogram,
    insertion_blend_score,
    interaction_graph_edges,
    schedule_circuit,
    segment_structural_leakage,
    window_divergence_profile,
)
from repro.baselines import das_insertion
from repro.circuits import QuantumCircuit
from repro.core import insert_random_pairs, interlocking_split
from repro.noise import fake_valencia, valencia_like_backend
from repro.revlib import benchmark_circuit
from repro.transpiler import transpile


class TestLeakageMetrics:
    def test_gate_histogram(self):
        qc = QuantumCircuit(2)
        qc.x(0).x(1).cx(0, 1)
        hist = gate_histogram(qc.gates())
        assert hist == {"x": 2, "cx": 1}

    def test_divergence_profile_flat_for_uniform_circuit(self):
        qc = QuantumCircuit(2)
        for _ in range(10):
            qc.cx(0, 1)
        profile = window_divergence_profile(qc)
        assert max(profile) == 0.0

    def test_divergence_profile_spikes_at_seam(self):
        qc = QuantumCircuit(3)
        for _ in range(6):
            qc.ccx(0, 1, 2)
        for _ in range(6):
            qc.h(0)
        profile = window_divergence_profile(qc, window=4)
        assert max(profile) == 1.0
        assert profile.index(max(profile)) in range(4, 9)

    def test_boundary_detection_on_das_baseline(self):
        """Block insertion leaves a detectable seam more often than
        TetrisLock's in-slot insertion (paper Sec. II-C)."""
        circuit = benchmark_circuit("4gt11")
        das = das_insertion(circuit, 6, "front", seed=1)
        das_score = boundary_detection_score(
            das.obfuscated, [len(das.random_block)]
        )
        tetris = insert_random_pairs(circuit, gate_limit=4, seed=1)
        pair_positions = [p.r_index for p in tetris.pairs]
        tetris_score = boundary_detection_score(
            tetris.obfuscated, pair_positions
        )
        assert 0.0 <= tetris_score <= 1.0
        assert das_score >= 0.5  # the block seam is visible

    def test_interaction_graph(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1).ccx(0, 1, 2)
        assert interaction_graph_edges(qc) == {(0, 1), (0, 2), (1, 2)}

    def test_segment_leakage_fractions(self):
        circuit = benchmark_circuit("rd53")
        insertion = insert_random_pairs(circuit, gate_limit=4, seed=2)
        split = interlocking_split(insertion, seed=3)
        leak1 = segment_structural_leakage(circuit, split.segment1.full)
        leak2 = segment_structural_leakage(circuit, split.segment2.full)
        assert 0.0 <= leak1 <= 1.0
        assert 0.0 <= leak2 <= 1.0
        # neither compiler sees the complete interaction graph... unless
        # the inserted gates accidentally cover it; the combined view can
        assert leak1 < 1.0 or leak2 < 1.0

    def test_blend_score_with_tailored_pool(self):
        circuit = benchmark_circuit("4mod5")  # X/CX/CCX host
        insertion = insert_random_pairs(
            circuit, gate_limit=4, gate_pool=("x", "cx"), seed=4
        )
        assert insertion_blend_score(insertion) == 1.0

    def test_blend_score_with_foreign_pool(self):
        circuit = benchmark_circuit("4mod5")
        insertion = insert_random_pairs(
            circuit, gate_limit=4, gate_pool=("h",), seed=4
        )
        if insertion.num_pairs:
            assert insertion_blend_score(insertion) == 0.0

    def test_boundary_requires_positions(self):
        with pytest.raises(ValueError):
            boundary_detection_score(QuantumCircuit(1), [])


class TestSchedule:
    def test_durations_accumulate(self):
        backend = fake_valencia()
        qc = QuantumCircuit(2)
        qc.u3(0.1, 0.2, 0.3, 0).cx(0, 1)
        schedule = schedule_circuit(qc, backend)
        assert schedule.total_duration_us == pytest.approx(
            0.0355 + 0.40, abs=1e-6
        )
        assert len(schedule.spans) == 2
        assert schedule.spans[1].start_us == pytest.approx(0.0355)

    def test_parallel_gates_overlap(self):
        qc = QuantumCircuit(2)
        qc.u3(0.1, 0.2, 0.3, 0).u3(0.1, 0.2, 0.3, 1)
        schedule = schedule_circuit(qc, fake_valencia())
        assert schedule.total_duration_us == pytest.approx(0.0355)

    def test_virtual_gates_are_free(self):
        qc = QuantumCircuit(1)
        qc.u1(0.4, 0)
        schedule = schedule_circuit(qc, fake_valencia())
        assert schedule.total_duration_us == 0.0

    def test_idle_time(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1).u3(0.1, 0.2, 0.3, 0)
        schedule = schedule_circuit(qc, fake_valencia())
        assert schedule.qubit_idle_us(1) == pytest.approx(0.0355)


class TestFidelityEstimate:
    def test_estimate_tracks_simulation(self):
        """The analytic estimate lands in the simulated ballpark."""
        backend = valencia_like_backend(4)
        compiled = transpile(
            benchmark_circuit("4gt13"), backend=backend,
            optimization_level=2,
        )
        estimate = estimate_success_probability(
            compiled.circuit, backend
        )
        from repro.simulator import run_counts_batched
        from repro.synth import simulate_reversible

        circuit = compiled.circuit.copy()
        circuit.num_clbits = 4
        for v in range(4):
            circuit.measure(compiled.final_layout.physical(v), v)
        counts = run_counts_batched(
            circuit, shots=2000, noise_model=backend.noise_model(), seed=5
        )
        expected = format(
            simulate_reversible(benchmark_circuit("4gt13"))(0), "04b"
        )
        simulated = counts.fraction(expected)
        assert abs(estimate - simulated) < 0.25

    def test_more_gates_lower_estimate(self):
        backend = valencia_like_backend(5)
        small = transpile(
            benchmark_circuit("4gt13"), backend=backend
        ).circuit
        large = transpile(
            benchmark_circuit("4gt11"), backend=backend
        ).circuit
        assert estimate_success_probability(
            large, backend
        ) < estimate_success_probability(small, backend)
