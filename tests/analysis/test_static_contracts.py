"""Contract checker: every real plan passes, every corruption is caught."""

import numpy as np
import pytest

from repro.analysis.static import (
    PlanContractError,
    check_noise_plan,
    check_plan,
    reset_validation_stats,
    validation_stats,
    verify_plan,
)
from repro.circuits import (
    QuantumCircuit,
    bernstein_vazirani_circuit,
    ghz_circuit,
    grover_circuit,
    qft_circuit,
)
from repro.execution.noise_plan import build_noise_plan
from repro.execution.plan import FUSION_LEVELS, PlanOp, build_plan
from repro.execution.plan_cache import PlanCache, get_plan
from repro.noise import fake_valencia, valencia_like_backend
from repro.revlib import benchmark_circuit
from repro.revlib.benchmarks import benchmark_names


def _library_circuits():
    yield "ghz", ghz_circuit(4)
    yield "bv", bernstein_vazirani_circuit("1011")
    yield "grover", grover_circuit(3)
    yield "qft", qft_circuit(4)
    for name in benchmark_names():
        yield name, benchmark_circuit(name)


class TestPlanContracts:
    @pytest.mark.parametrize("fusion", FUSION_LEVELS)
    def test_every_benchmark_passes_every_level(self, fusion):
        for name, circuit in _library_circuits():
            report = check_plan(build_plan(circuit, fusion), circuit)
            assert report.ok, f"{name}@{fusion}: {report.violations}"
            assert report.checks > 0

    @pytest.mark.parametrize("fusion", FUSION_LEVELS)
    def test_noisy_plan_path_fake_backend(self, fusion):
        model = fake_valencia().noise_model()
        for name in ("4gt13", "one_bit_adder"):
            circuit = benchmark_circuit(name)
            plan = build_noise_plan(circuit, model, fusion)
            report = check_noise_plan(plan, circuit, model)
            assert report.ok, f"{name}@{fusion}: {report.violations}"

    def test_noisy_plan_mid_circuit_measures(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0).measure(0, 0).x(1).cx(0, 1).measure(1, 1)
        model = valencia_like_backend(2).noise_model()
        plan = build_noise_plan(qc, model, "full")
        assert not plan.terminal
        report = check_noise_plan(plan, qc, model)
        assert report.ok, report.violations

    def test_mutated_fused_matrix_rejected_precisely(self):
        circuit = benchmark_circuit("4gt13")
        plan = build_plan(circuit, "full")
        ops = list(plan.ops)
        idx = next(i for i, op in enumerate(ops) if op.kind == "matrix")
        bad = ops[idx].matrix.copy()
        bad[0, 0] += 0.5
        ops[idx] = PlanOp("matrix", ops[idx].qubits, matrix=bad)
        plan.ops = tuple(ops)
        report = check_plan(plan)
        assert not report.ok
        rules = {v.rule for v in report.violations}
        assert "unitarity" in rules
        # the report names the exact op
        locations = {v.location for v in report.violations}
        assert f"ops[{idx}]" in locations

    def test_out_of_range_qubit_rejected(self):
        circuit = ghz_circuit(3)
        plan = build_plan(circuit, "none")
        ops = list(plan.ops)
        ops[0] = PlanOp("matrix", (7,), matrix=ops[0].matrix)
        plan.ops = tuple(ops)
        report = check_plan(plan)
        rules = {v.rule for v in report.violations}
        assert "qubit-range" in rules

    def test_non_ascending_diagonal_rejected(self):
        circuit = QuantumCircuit(3)
        circuit.t(0).cz(0, 1).cp(0.3, 1, 2)
        plan = build_plan(circuit, "full")
        ops = list(plan.ops)
        idx = next(
            (i for i, op in enumerate(ops) if op.kind == "diagonal"), None
        )
        assert idx is not None, "all-diagonal circuit should fuse to a diagonal op"
        op = ops[idx]
        assert len(op.qubits) >= 2
        ops[idx] = PlanOp(
            "diagonal", tuple(reversed(op.qubits)), diag=op.diag
        )
        plan.ops = tuple(ops)
        report = check_plan(plan)
        assert any(
            v.rule == "diagonal-structure" for v in report.violations
        )

    def test_measure_order_mismatch_rejected(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1)
        plan = build_plan(qc, "full")
        plan.measured = ((1, 1), (0, 0))  # swapped program order
        report = check_plan(plan, qc)
        assert any(v.rule == "measure-order" for v in report.violations)

    def test_channel_binding_corruption_rejected(self):
        model = fake_valencia().noise_model()
        circuit = benchmark_circuit("4gt13")
        plan = build_noise_plan(circuit, model, "full")
        steps = list(plan.steps)
        idx = next(
            i for i, step in enumerate(steps) if step[0] == "channel"
        )
        binding = steps[idx][1]
        # break the cumulative table (no longer sums to 1)
        binding.cumulative = binding.cumulative * 0.5
        report = check_noise_plan(plan)
        assert any(
            v.rule == "cumulative-table" for v in report.violations
        )

    def test_anchor_crossing_detected(self):
        """Fusing two gates across a channel anchor is rejected."""
        model = valencia_like_backend(2).noise_model()
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        plan = build_noise_plan(qc, model, "none")
        # corrupt: merge both spans' ops into the first span, emptying
        # the second — simulating a fusion pass that ignored the anchor
        steps = list(plan.steps)
        span_indices = [
            i for i, step in enumerate(steps) if step[0] == "span"
        ]
        assert len(span_indices) >= 2
        first, second = span_indices[0], span_indices[1]
        merged = steps[first][1] + steps[second][1]
        steps[first] = ("span", merged)
        del steps[second]
        plan.steps = tuple(steps)
        report = check_noise_plan(plan, qc, model)
        assert not report.ok
        rules = {v.rule for v in report.violations}
        assert rules & {"anchor-structure", "anchor-crossing"}


class TestValidateKnob:
    def test_get_plan_validate_passes_clean(self):
        circuit = ghz_circuit(4)
        cache = PlanCache()
        plan = get_plan(circuit, "full", cache=cache, validate=True)
        assert plan.num_qubits == 4

    def test_cache_validate_noise_plan(self):
        model = fake_valencia().noise_model()
        circuit = benchmark_circuit("4gt13")
        cache = PlanCache()
        plan = cache.noise_plan_for(circuit, model, "full", validate=True)
        assert plan.num_channels > 0

    def test_validate_raises_with_full_report(self, monkeypatch):
        import repro.execution.plan_cache as plan_cache_mod

        circuit = ghz_circuit(3)
        good = build_plan(circuit, "full")
        ops = list(good.ops)
        bad = ops[0].to_matrix().copy()
        bad[0, 0] += 1.0
        ops[0] = PlanOp("matrix", ops[0].qubits, matrix=bad)
        good.ops = tuple(ops)
        monkeypatch.setattr(
            plan_cache_mod, "build_plan", lambda c, f: good
        )
        cache = PlanCache()
        with pytest.raises(PlanContractError) as excinfo:
            cache.plan_for(circuit, "full", validate=True)
        assert excinfo.value.report.violations
        assert "unitarity" in str(excinfo.value)

    def test_broken_plan_not_cached(self, monkeypatch):
        import repro.execution.plan_cache as plan_cache_mod

        circuit = ghz_circuit(3)
        broken = build_plan(circuit, "full")
        ops = list(broken.ops)
        bad = ops[0].to_matrix().copy()
        bad[0, 0] += 1.0
        ops[0] = PlanOp("matrix", ops[0].qubits, matrix=bad)
        broken.ops = tuple(ops)
        monkeypatch.setattr(
            plan_cache_mod, "build_plan", lambda c, f: broken
        )
        cache = PlanCache()
        with pytest.raises(PlanContractError):
            cache.plan_for(circuit, "full", validate=True)
        monkeypatch.undo()
        # the poisoned plan must not have been stored
        plan = cache.plan_for(circuit, "full", validate=True)
        report = check_plan(plan, circuit)
        assert report.ok


class TestValidationCounters:
    def test_counters_track_checks_and_violations(self):
        reset_validation_stats()
        circuit = ghz_circuit(3)
        check_plan(build_plan(circuit, "full"), circuit)
        plan = build_plan(circuit, "full")
        ops = list(plan.ops)
        bad = ops[0].to_matrix().copy()
        bad[0, 0] += 1.0
        ops[0] = PlanOp("matrix", ops[0].qubits, matrix=bad)
        plan.ops = tuple(ops)
        check_plan(plan)
        stats = validation_stats()
        assert stats["plans_checked"] == 2
        assert stats["violations"] >= 1
        reset_validation_stats()
        assert validation_stats()["plans_checked"] == 0

    def test_service_stats_expose_plan_validation(self):
        from repro.service import JobService

        service = JobService(workers=1)
        stats = service.stats()
        assert "plan_validation" in stats
        assert set(stats["plan_validation"]) == {
            "plans_checked",
            "noise_plans_checked",
            "violations",
        }


class TestVerifyPlanOrchestrator:
    def test_verify_plan_noiseless_and_noisy(self):
        circuit = benchmark_circuit("4gt13")
        model = valencia_like_backend(circuit.num_qubits).noise_model()
        result = verify_plan(circuit, "full", model)
        assert result.ok
        assert result.noise is not None and result.noise.ok
        payload = result.to_dict()
        assert payload["ok"] and payload["noise"]["ok"]
        assert any("contract" in line for line in result.summary_lines())
