"""Dataflow pass: def-use chains, light cones, dead ops, lowering proofs."""

import numpy as np
import pytest

from repro.analysis.static import (
    dead_ops,
    def_use_chains,
    light_cone,
    verify_lowering,
)
from repro.circuits import QuantumCircuit, ghz_circuit
from repro.execution.plan import FUSION_LEVELS, build_plan
from repro.revlib import benchmark_circuit
from repro.revlib.benchmarks import benchmark_names


def _source_ops(circuit):
    return build_plan(circuit, "none").source_ops


class TestChains:
    def test_def_use_chains_ghz(self):
        # ghz(3): h q0; cx q0,q1; cx q1,q2
        ops = _source_ops(ghz_circuit(3))
        chains = def_use_chains(ops)
        assert chains[0] == [0, 1]
        assert chains[1] == [1, 2]
        assert chains[2] == [2]

    def test_light_cone_backward(self):
        ops = _source_ops(ghz_circuit(3))
        # the cone of q2 is everything: cx(1,2) <- cx(0,1) <- h(0)
        assert light_cone(ops, [2]) == [0, 1, 2]
        # the cone of q0 alone stops at ops touching q0
        assert light_cone(ops, [0]) == [0, 1]

    def test_light_cone_disjoint_qubit(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).x(2)
        ops = _source_ops(qc)
        assert light_cone(ops, [2]) == [2]

    def test_dead_ops_flags_identity_products(self):
        qc = QuantumCircuit(1)
        qc.x(0).x(0)
        plan = build_plan(qc, "full")
        dead = dead_ops(plan.ops)
        # x·x == I: the fused op is dead
        assert dead == [0]

    def test_dead_ops_empty_on_real_work(self):
        plan = build_plan(ghz_circuit(3), "full")
        assert dead_ops(plan.ops) == []


class TestVerifyLowering:
    @pytest.mark.parametrize("fusion", FUSION_LEVELS)
    def test_all_benchmarks_verify(self, fusion):
        for name in benchmark_names():
            circuit = benchmark_circuit(name)
            plan = build_plan(circuit, fusion)
            report = verify_lowering(
                plan.source_ops, plan.ops, plan.num_qubits
            )
            assert report.ok, f"{name}@{fusion}: {report.violations}"

    def test_provenance_recorded(self):
        plan = build_plan(ghz_circuit(3), "full")
        report = verify_lowering(plan.source_ops, plan.ops, 3)
        assert report.ok
        provenance = report.metadata["provenance"]
        assert len(provenance) == len(plan.ops)
        consumed = [i for group in provenance for i in group]
        assert consumed == sorted(consumed)

    def test_self_inverse_pair_absorbed(self):
        """h,x,x fuses to h — last-match-wins must consume the x,x pair."""
        qc = QuantumCircuit(1)
        qc.h(0).x(0).x(0)
        plan = build_plan(qc, "full")
        report = verify_lowering(plan.source_ops, plan.ops, 1)
        assert report.ok, report.violations

    def test_reordered_non_commuting_ops_rejected(self):
        plan = build_plan(ghz_circuit(3), "none")
        ops = list(plan.ops)
        # swap h(0) and cx(0,1): they do not commute
        ops[0], ops[1] = ops[1], ops[0]
        report = verify_lowering(plan.source_ops, tuple(ops), 3)
        assert not report.ok
        violation = report.violations[0]
        assert violation.rule == "lowering-order"
        # the report names the blocking source op precisely
        assert "blocked" in violation.message
        assert "h" in violation.message or "cx" in violation.message

    def test_dropped_op_is_coverage_violation(self):
        plan = build_plan(ghz_circuit(3), "none")
        report = verify_lowering(plan.source_ops, plan.ops[:-1], 3)
        assert not report.ok
        assert any(
            v.rule == "lowering-coverage" for v in report.violations
        )

    def test_wrong_matrix_rejected(self):
        plan = build_plan(ghz_circuit(3), "full")
        ops = list(plan.ops)
        z = np.diag([1.0, -1.0]).astype(complex)
        first = ops[0]
        k = len(first.qubits)
        corrupted = first.to_matrix().copy()
        full_z = z
        for _ in range(k - 1):
            full_z = np.kron(full_z, np.eye(2))
        from repro.execution.plan import PlanOp

        ops[0] = PlanOp(
            "matrix", first.qubits, matrix=full_z @ corrupted
        )
        report = verify_lowering(plan.source_ops, tuple(ops), 3)
        assert not report.ok

    def test_empty_circuit_trivially_verifies(self):
        qc = QuantumCircuit(2)
        plan = build_plan(qc, "full")
        report = verify_lowering(plan.source_ops, plan.ops, 2)
        assert report.ok
