"""Stabilizer tableau: Clifford recognition and equivalence certificates."""

import numpy as np
import pytest

from repro.analysis.static import (
    NotCliffordError,
    Tableau,
    certify_equivalence,
    clifford_images,
    tableau_from_ops,
)
from repro.analysis.static.tableau import diagonal_clifford_images
from repro.circuits import (
    QuantumCircuit,
    bernstein_vazirani_circuit,
    ghz_circuit,
)
from repro.execution.plan import FUSION_LEVELS, build_plan
from repro.revlib import benchmark_circuit

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.diag([1.0, -1.0]).astype(complex)
_H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
_S = np.diag([1.0, 1j])
_CX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
    dtype=complex,
)
_CZ = np.diag([1.0, 1.0, 1.0, -1.0]).astype(complex)


def _pauli_dense(x_bits, z_bits, phase, k):
    """Rebuild i^phase · (∏X)(∏Z) densely to cross-check decoded images."""
    out = np.array([[1.0 + 0j]])
    for t in range(k):
        factor = _I
        x, z = x_bits[t], z_bits[t]
        if x and z:
            # X·Z at one site
            factor = _X @ _Z
        elif x:
            factor = _X
        elif z:
            factor = _Z
        out = np.kron(out, factor)
    return (1j ** phase) * out


def _check_images_against_dense(matrix, k):
    """Decoded U P U† must equal the dense conjugation for every generator."""
    img_x, img_z = clifford_images(matrix, k)
    for t in range(k):
        for images, local in ((img_x, _X), (img_z, _Z)):
            p = np.array([[1.0 + 0j]])
            for s in range(k):
                p = np.kron(p, local if s == t else _I)
            expected = matrix @ p @ matrix.conj().T
            x_bits, z_bits, phase = images[t]
            got = _pauli_dense(x_bits, z_bits, phase, k)
            np.testing.assert_allclose(got, expected, atol=1e-10)


class TestCliffordRecognition:
    @pytest.mark.parametrize(
        "matrix,k",
        [(_H, 1), (_S, 1), (_X, 1), (_Y, 1), (_Z, 1), (_CX, 2), (_CZ, 2)],
    )
    def test_images_match_dense_conjugation(self, matrix, k):
        _check_images_against_dense(matrix, k)

    def test_fused_clifford_block(self):
        block = np.kron(_H, _I) @ _CX @ np.kron(_S, _H)
        _check_images_against_dense(block, 2)

    def test_t_gate_raises_not_clifford(self):
        t = np.diag([1.0, np.exp(1j * np.pi / 4)])
        with pytest.raises(NotCliffordError):
            clifford_images(t, 1)

    def test_diagonal_images_match_matrix_path(self):
        for diag in (np.diag(_S), np.diag(_CZ), np.diag(np.kron(_Z, _S))):
            k = int(np.log2(diag.size))
            via_diag = diagonal_clifford_images(diag, k)
            via_matrix = clifford_images(np.diag(diag), k)
            assert via_diag == via_matrix

    def test_diagonal_t_raises(self):
        with pytest.raises(NotCliffordError):
            diagonal_clifford_images(
                np.array([1.0, np.exp(1j * np.pi / 4)]), 1
            )


class TestTableau:
    def test_identity_tableaus_equal(self):
        assert Tableau(3).same_as(Tableau(3))

    def test_hh_is_identity(self):
        tab = Tableau(1)
        tab.apply_matrix(_H, (0,))
        tab.apply_matrix(_H, (0,))
        assert tab.same_as(Tableau(1))

    def test_order_sensitive(self):
        a, b = Tableau(2), Tableau(2)
        a.apply_matrix(_H, (0,))
        a.apply_matrix(_CX, (0, 1))
        b.apply_matrix(_CX, (0, 1))
        b.apply_matrix(_H, (0,))
        assert not a.same_as(b)
        diff = a.first_difference(b)
        assert diff is not None and "differ" in diff


class TestCertificates:
    @pytest.mark.parametrize("fusion", FUSION_LEVELS)
    @pytest.mark.parametrize(
        "circuit_factory",
        [
            lambda: ghz_circuit(4),
            lambda: bernstein_vazirani_circuit("1011"),
            lambda: benchmark_circuit("graycode6"),
        ],
        ids=["ghz", "bv", "graycode6"],
    )
    def test_clifford_benchmarks_certified(self, circuit_factory, fusion):
        circuit = circuit_factory()
        plan = build_plan(circuit, fusion)
        cert = certify_equivalence(
            plan.source_ops, plan.ops, plan.num_qubits
        )
        assert cert.status == "certified", cert.detail
        assert cert.certified and cert.ok

    def test_non_clifford_reports_not_clifford(self):
        circuit = benchmark_circuit("4gt13")  # Toffoli-based
        plan = build_plan(circuit, "full")
        cert = certify_equivalence(
            plan.source_ops, plan.ops, plan.num_qubits
        )
        assert cert.status == "not_clifford"
        assert cert.ok and not cert.certified

    def test_mismatch_detected_with_generator_diff(self):
        plan = build_plan(ghz_circuit(3), "full")
        ops = list(plan.ops)
        first = ops[0]
        k = len(first.qubits)
        z_embed = _Z
        for _ in range(k - 1):
            z_embed = np.kron(z_embed, _I)
        from repro.execution.plan import PlanOp

        ops[0] = PlanOp(
            "matrix", first.qubits, matrix=z_embed @ first.to_matrix()
        )
        cert = certify_equivalence(plan.source_ops, tuple(ops), 3)
        assert cert.status == "mismatch"
        assert not cert.ok
        assert "differ" in cert.detail

    def test_certificate_to_dict(self):
        plan = build_plan(ghz_circuit(3), "1q")
        cert = certify_equivalence(plan.source_ops, plan.ops, 3)
        payload = cert.to_dict()
        assert payload["status"] == "certified"
        assert payload["num_qubits"] == 3

    def test_tableau_from_ops_wraps_op_index(self):
        qc = QuantumCircuit(1)
        qc.h(0).t(0)
        plan = build_plan(qc, "none")
        with pytest.raises(NotCliffordError) as excinfo:
            tableau_from_ops(plan.ops, 1)
        assert excinfo.value.op_index == 1
