"""Noise-bound lowering: trace-time classification, caching, keying.

The contract under test (see ``repro/execution/noise_plan.py``):

* channels are resolved and classified once per plan — mixed-unitary
  channels carry precomputed cumulative tables and pre-scaled branch
  matrices, general Kraus channels carry Gram matrices;
* single-operator (unitary) channels fold into the surrounding span
  instead of anchoring a stochastic step;
* the cache key is structural hash x noise fingerprint x fusion — two
  models on one circuit never collide, and mutating a model re-keys it;
* a cache hit does zero re-tracing (misses == traces).
"""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.execution import build_noise_plan, get_noise_plan
from repro.execution.noise_plan import ChannelBinding
from repro.execution.plan_cache import PlanCache
from repro.noise import (
    NoiseModel,
    QuantumChannel,
    ReadoutError,
    amplitude_damping,
    bit_flip,
    depolarizing,
)


def _circuit():
    qc = QuantumCircuit(3, 3)
    qc.h(0).cx(0, 1).rz(0.4, 1).cx(1, 2).x(2)
    for q in range(3):
        qc.measure(q, q)
    return qc


def _mixed_model():
    model = NoiseModel()
    model.add_all_qubit_quantum_error(depolarizing(0.02), ["h", "x"])
    model.add_all_qubit_quantum_error(
        depolarizing(0.05, num_qubits=2), ["cx"]
    )
    model.add_readout_error(ReadoutError(0.03, 0.06), 0)
    return model


class TestChannelPrecompute:
    def test_cumulative_table_cached_on_channel(self):
        channel = depolarizing(0.1)
        table = channel.mixed_unitary_cumulative
        assert table is channel.mixed_unitary_cumulative  # memoized
        np.testing.assert_allclose(
            table, np.cumsum(channel.mixed_unitary_probs)
        )
        assert table[-1] == pytest.approx(1.0)

    def test_scaled_branches_cached_and_prescaled(self):
        channel = bit_flip(0.25)
        scaled = channel.mixed_unitary_scaled
        assert scaled is channel.mixed_unitary_scaled
        probs = channel.mixed_unitary_probs
        for op, weight, ref in zip(
            scaled, probs, channel.kraus_operators
        ):
            np.testing.assert_array_equal(op, ref / np.sqrt(weight))

    def test_kraus_grams_cached(self):
        channel = amplitude_damping(0.2)
        grams = channel.kraus_grams
        assert grams is channel.kraus_grams
        for gram, op in zip(grams, channel.kraus_operators):
            np.testing.assert_allclose(gram, op.conj().T @ op)

    def test_binding_classification(self):
        mixed = ChannelBinding(depolarizing(0.1), (0,))
        assert mixed.kind == "mixed"
        assert mixed.cumulative is not None and mixed.grams is None
        kraus = ChannelBinding(amplitude_damping(0.2), (1,))
        assert kraus.kind == "kraus"
        assert kraus.cumulative is None and kraus.grams is not None
        assert kraus.qubits == (1,)


class TestErrorsForMemo:
    def test_memoized_per_name_and_qubits(self):
        model = _mixed_model()
        qc = _circuit()
        gates = [inst for inst in qc if not inst.is_measure]
        first = model.errors_for(gates[0])
        assert model.errors_for(gates[0]) is first

    def test_mutation_invalidates_memo_and_fingerprint(self):
        model = _mixed_model()
        qc = _circuit()
        gate = next(iter(qc))
        before = model.errors_for(gate)
        fp_before = model.fingerprint()
        assert model.fingerprint() == fp_before  # stable until mutated
        model.add_all_qubit_quantum_error(bit_flip(0.01), ["h"])
        after = model.errors_for(gate)
        assert after is not before
        assert len(after) == len(before) + 1
        assert model.fingerprint() != fp_before

    def test_fingerprint_distinguishes_models(self):
        a = _mixed_model().fingerprint()
        b = _mixed_model().fingerprint()
        assert a == b  # deterministic across equal builds
        other = NoiseModel()
        other.add_all_qubit_quantum_error(depolarizing(0.021), ["h", "x"])
        assert other.fingerprint() != a


class TestBuildNoisePlan:
    def test_channels_anchor_and_spans_fuse(self):
        plan = build_noise_plan(_circuit(), _mixed_model())
        assert plan.terminal
        # h, cx, cx, x carry channels; rz has none bound
        assert plan.num_channels == 4
        assert plan.source_gates == 5
        # one readout entry bound, on qubit 0
        readouts = [e for e in plan.entries if e[2] is not None]
        assert [e[0] for e in readouts] == [0]
        # sites: 4 channels + 1 terminal sample + 1 readout
        assert plan.num_sites == 6

    def test_trivial_model_is_pure_spans(self):
        plan = build_noise_plan(_circuit(), NoiseModel())
        assert plan.num_channels == 0
        assert plan.num_spans >= 1
        assert plan.num_sites == 1  # just the terminal sample

    def test_single_kraus_channel_folds_into_span(self):
        unitary = QuantumChannel([np.diag([1.0, 1j])], "s-rot")
        model = NoiseModel()
        model.add_all_qubit_quantum_error(unitary, ["h"])
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure(0, 0)
        plan = build_noise_plan(qc, model)
        assert plan.num_channels == 0  # folded: unitary, no randomness
        assert plan.num_spans == 1

    def test_identity_gate_keeps_its_channel(self):
        model = NoiseModel()
        model.add_all_qubit_quantum_error(bit_flip(0.3), ["id"])
        qc = QuantumCircuit(1, 1)
        qc.i(0)
        qc.measure(0, 0)
        plan = build_noise_plan(qc, model)
        assert plan.num_spans == 0  # identity dropped from the span
        assert plan.num_channels == 1  # but its channel is kept

    def test_mid_circuit_measure_steps_carry_sites(self):
        model = NoiseModel()
        model.add_readout_error(ReadoutError(0.1, 0.1), 0)
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.measure(0, 0)
        qc.x(0)
        qc.measure(1, 1)
        plan = build_noise_plan(qc, model)
        assert not plan.terminal
        measures = [s for s in plan.steps if s[0] == "measure"]
        assert len(measures) == 2
        # qubit 0's measure has a bound readout + its own site
        assert measures[0][4] is not None
        assert measures[0][5] is not None
        # qubit 1 has no readout error bound
        assert measures[1][4] is None

    def test_unknown_fusion_rejected(self):
        with pytest.raises(ValueError, match="fusion"):
            build_noise_plan(_circuit(), NoiseModel(), fusion="mega")


class TestNoisePlanCache:
    def test_hit_miss_and_zero_retrace(self):
        cache = PlanCache(maxsize=8)
        qc = _circuit()
        model = _mixed_model()
        first = cache.noise_plan_for(qc, model)
        again = cache.noise_plan_for(qc, model)
        assert again is first  # hit: zero re-trace
        stats = cache.stats()
        assert stats.misses == 1 and stats.hits == 1

    def test_two_models_never_collide(self):
        cache = PlanCache(maxsize=8)
        qc = _circuit()
        a = cache.noise_plan_for(qc, _mixed_model())
        other = NoiseModel()
        other.add_all_qubit_quantum_error(amplitude_damping(0.1), ["h"])
        b = cache.noise_plan_for(qc, other)
        assert b is not a
        assert cache.stats().misses == 2
        assert b.num_channels != a.num_channels

    def test_mutated_model_rekeys(self):
        cache = PlanCache(maxsize=8)
        qc = _circuit()
        model = _mixed_model()
        first = cache.noise_plan_for(qc, model)
        model.add_all_qubit_quantum_error(bit_flip(0.01), ["rz"])
        second = cache.noise_plan_for(qc, model)
        assert second is not first
        assert second.num_channels == first.num_channels + 1

    def test_fusion_levels_key_separately(self):
        cache = PlanCache(maxsize=8)
        qc = _circuit()
        model = _mixed_model()
        full = cache.noise_plan_for(qc, model, "full")
        none = cache.noise_plan_for(qc, model, "none")
        assert none is not full

    def test_disabled_cache_bypasses(self):
        cache = PlanCache(maxsize=8)
        cache.enabled = False
        qc = _circuit()
        model = _mixed_model()
        a = cache.noise_plan_for(qc, model)
        b = cache.noise_plan_for(qc, model)
        assert a is not b

    def test_global_helper_caches(self):
        cache = PlanCache(maxsize=4)
        qc = _circuit()
        model = _mixed_model()
        a = get_noise_plan(qc, model, cache=cache)
        b = get_noise_plan(qc, model, cache=cache)
        assert a is b
