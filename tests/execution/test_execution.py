"""The unified execution layer: registry, dispatch, cross-engine agreement."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, random_circuit
from repro.execution import (
    available_engines,
    get_engine,
    register_engine,
    run,
    select_engine,
    unregister_engine,
)
from repro.metrics import tvd
from repro.noise import depolarizing, fake_valencia
from repro.noise.model import NoiseModel
from repro.simulator import DensityMatrixSimulator


def _terminal_circuit():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1).measure_all()
    return qc


def _mid_circuit():
    qc = QuantumCircuit(2, 2)
    qc.h(0).measure(0, 0).x(0).measure(0, 1)
    return qc


def _noise():
    model = NoiseModel("depol")
    model.add_all_qubit_quantum_error(depolarizing(0.02), ["h", "x", "cx"])
    return model


class TestRegistry:
    def test_builtin_engines_present(self):
        assert set(available_engines()) >= {
            "statevector",
            "trajectory",
            "batched",
            "density",
        }

    def test_get_engine_unknown_name(self):
        with pytest.raises(KeyError, match="unknown engine"):
            get_engine("stabilizer")

    def test_register_and_unregister_custom_engine(self):
        class FakeEngine:
            name = "fake"

            def supports(self, circuit, noise_model=None):
                return True

            def run(self, circuit, shots, *, noise_model=None,
                    seed=None, dtype=None):
                from repro.simulator import Counts

                return Counts({"0" * circuit.num_qubits: shots},
                              shots=shots)

        try:
            register_engine(FakeEngine())
            assert "fake" in available_engines()
            counts = run(_terminal_circuit(), 10, method="fake")
            assert counts == {"00": 10}
        finally:
            unregister_engine("fake")
        assert "fake" not in available_engines()

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_engine(get_engine("batched"), name="batched")

    def test_register_requires_name(self):
        class Nameless:
            pass

        with pytest.raises(ValueError, match="name"):
            register_engine(Nameless())


class TestDispatch:
    def test_noiseless_terminal_uses_statevector(self):
        assert select_engine(_terminal_circuit()) == "statevector"

    def test_trivial_noise_model_counts_as_noiseless(self):
        assert (
            select_engine(_terminal_circuit(), noise_model=NoiseModel())
            == "statevector"
        )

    def test_noisy_terminal_uses_batched(self):
        assert (
            select_engine(_terminal_circuit(), noise_model=_noise())
            == "batched"
        )

    def test_mid_circuit_uses_trajectory(self):
        assert select_engine(_mid_circuit()) == "trajectory"
        assert (
            select_engine(_mid_circuit(), noise_model=_noise())
            == "trajectory"
        )

    def test_reduced_precision_steers_to_batched(self):
        assert (
            select_engine(_terminal_circuit(), dtype=np.complex64)
            == "batched"
        )

    def test_full_precision_keeps_statevector(self):
        assert (
            select_engine(_terminal_circuit(), dtype=np.complex128)
            == "statevector"
        )

    def test_density_never_auto_selected_but_explicit(self):
        counts = run(
            _terminal_circuit(), 200, method="density", seed=0
        )
        assert counts.shots == 200

    def test_invalid_shots(self):
        with pytest.raises(ValueError, match="shots"):
            run(_terminal_circuit(), 0)

    def test_statevector_rejects_noise(self):
        engine = get_engine("statevector")
        with pytest.raises(ValueError, match="noiseless"):
            engine.run(_terminal_circuit(), 10, noise_model=_noise())

    def test_statevector_rejects_mid_circuit(self):
        engine = get_engine("statevector")
        with pytest.raises(ValueError, match="terminal"):
            engine.run(_mid_circuit(), 10)

    def test_exact_engines_reject_reduced_precision(self):
        for name in ("statevector", "trajectory", "density"):
            with pytest.raises(ValueError, match="complex128"):
                run(
                    _terminal_circuit(), 10,
                    method=name, dtype=np.complex64,
                )

    def test_mid_circuit_reduced_precision_is_rejected_loudly(self):
        """No engine can honour complex64 with mid-circuit measurement
        — dispatch must refuse rather than silently upcast."""
        with pytest.raises(ValueError, match="mid-circuit"):
            run(_mid_circuit(), 10, dtype=np.complex64)
        with pytest.raises(ValueError, match="mid-circuit"):
            run(_mid_circuit(), 10, method="batched", dtype=np.complex64)

    def test_batched_honours_dtype(self):
        counts = run(
            _terminal_circuit(), 500,
            method="batched", seed=1, dtype=np.complex128,
        )
        assert set(counts) <= {"00", "11"}
        assert counts.shots == 500


class TestCrossEngineAgreement:
    """Seeded random circuits through every engine must agree within
    shot noise (the dispatch layer must never change statistics)."""

    SHOTS = 4000

    def _exact_reference(self, circuit, noise_model=None):
        probs = DensityMatrixSimulator(noise_model).output_distribution(
            circuit
        )
        n = circuit.num_qubits
        return {format(i, f"0{n}b"): p for i, p in enumerate(probs)}

    @pytest.mark.parametrize("circuit_seed", [3, 17])
    def test_noiseless_engines_agree(self, circuit_seed):
        circuit = random_circuit(
            3, 8, gate_pool=["h", "x", "t", "cx", "cz"],
            seed=circuit_seed,
        )
        reference = self._exact_reference(circuit)
        circuit = circuit.measure_all()
        for method in ("statevector", "trajectory", "batched", "density"):
            counts = run(
                circuit, self.SHOTS, method=method, seed=42
            )
            distance = tvd(counts.probabilities(), reference)
            assert distance < 0.05, (method, distance)

    def test_noisy_engines_agree(self):
        noise = _noise()
        circuit = random_circuit(
            3, 6, gate_pool=["h", "x", "cx"], seed=8
        )
        reference = self._exact_reference(circuit, noise)
        circuit = circuit.measure_all()
        for method in ("trajectory", "batched", "density"):
            counts = run(
                circuit, self.SHOTS, method=method,
                noise_model=noise, seed=7,
            )
            distance = tvd(counts.probabilities(), reference)
            assert distance < 0.05, (method, distance)

    def test_auto_matches_explicit_statistics(self):
        """Auto dispatch runs the same engine the explicit name does."""
        circuit = _terminal_circuit()
        auto = run(circuit, 1000, seed=5)
        explicit = run(circuit, 1000, method="statevector", seed=5)
        assert auto == explicit

    def test_valencia_noise_cross_engine(self):
        noise = fake_valencia().noise_model()
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).measure_all()
        reference = run(
            circuit, 8000, method="density", noise_model=noise, seed=0
        )
        batched = run(
            circuit, 8000, method="batched", noise_model=noise, seed=1
        )
        assert tvd(reference.probabilities(),
                   batched.probabilities()) < 0.04
