"""Compiled-execution tier: trace/lower/fuse, the plan cache, engines.

The contract under test (see ``repro/execution/plan.py``):

* ``fuse="none"`` is bit-identical to the legacy per-instruction loops
  on every engine;
* ``"1q"``/``"full"`` agree with the unfused result to 1e-12;
* the plan cache traces a circuit exactly once per fusion level
  (misses == traces), evicts LRU, and is safe to hit from threads;
* paper-benchmark counts at pinned seeds are unchanged by the default
  fused path.
"""

import threading

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, random_circuit
from repro.execution import (
    build_plan,
    get_plan,
    get_plan_cache,
    register_engine,
    run,
    unregister_engine,
)
from repro.execution.plan import lower_trace, trace_circuit
from repro.execution.plan_cache import PlanCache
from repro.noise import depolarizing
from repro.noise.model import NoiseModel
from repro.revlib import benchmark_circuit
from repro.simulator import DensityMatrixSimulator, Statevector
from repro.simulator.batched import BatchedTrajectorySimulator
from repro.simulator.kernels import matrix_is_identity
from repro.simulator.trajectory import terminal_distribution
from repro.simulator.unitary import circuit_unitary

FUSIONS = ("none", "1q", "full")
POOL = ["x", "y", "z", "h", "s", "t", "rx", "ry", "rz", "cx", "cz", "swap"]


def _random(n, gates, seed):
    return random_circuit(n, gates, gate_pool=POOL, seed=seed)


def _mixed_circuit():
    """Identities, barriers, diagonal runs, overlapping 2q gates."""
    qc = QuantumCircuit(4, 4)
    qc.h(0).i(1).t(0).s(0).rz(0.7, 1).cz(0, 1).cp(0.3, 1, 2)
    qc.barrier()
    qc.cx(2, 1).i(3).x(3).y(3).ccx(0, 1, 2).swap(2, 3).rz(1.1, 3)
    for q in range(4):
        qc.measure(q, q)
    return qc


def _noise():
    model = NoiseModel("depol")
    model.add_all_qubit_quantum_error(
        depolarizing(0.02), ["h", "x", "y", "cx", "cz"]
    )
    return model


class TestTraceAndLower:
    def test_trace_splits_measures_and_drops_barriers(self):
        trace = trace_circuit(_mixed_circuit())
        assert trace.measured == [(q, q) for q in range(4)]
        assert all(op.instruction.is_gate for op in trace.ops)

    def test_trace_keeps_identity_gates_with_flags(self):
        # noise models bind errors to identity gates too, so the traced
        # stream must keep them (flagged) for the per-instruction mode
        trace = trace_circuit(_mixed_circuit())
        identity_ops = [op for op in trace.ops if op.identity]
        assert len(identity_ops) == 2

    def test_diagonal_classification(self):
        qc = QuantumCircuit(2)
        qc.rz(0.5, 0).cz(0, 1).cp(0.2, 0, 1).t(1).h(0)
        trace = trace_circuit(qc)
        assert [op.diagonal for op in trace.ops] == [
            True, True, True, True, False,
        ]

    def test_lowering_drops_identities_at_every_level(self):
        trace = trace_circuit(_mixed_circuit())
        for fusion in FUSIONS:
            ops = lower_trace(trace, fusion)
            assert len(ops) < len(trace.ops)

    def test_fusion_reduces_op_count(self):
        qc = _random(4, 60, seed=11)
        plan_none = build_plan(qc, "none")
        plan_full = build_plan(qc, "full")
        assert plan_full.num_ops < plan_none.num_ops

    def test_blocks_capped_at_three_qubits(self):
        plan = build_plan(_random(6, 80, seed=3), "full")
        assert all(len(op.qubits) <= 3 for op in plan.ops)

    def test_unknown_fusion_level_rejected(self):
        with pytest.raises(ValueError, match="fusion"):
            build_plan(QuantumCircuit(1), "2q")

    def test_timing_and_summary_fields(self):
        plan = build_plan(_mixed_circuit(), "full")
        assert plan.trace_seconds >= 0.0
        assert plan.lower_seconds >= 0.0
        assert plan.compile_seconds == pytest.approx(
            plan.trace_seconds + plan.lower_seconds
        )
        assert plan.source_gates == 14
        assert 0 < plan.num_ops <= plan.source_gates


class TestFusedAgreement:
    """Fused vs unfused to 1e-12; ``none`` bit-identical — per engine."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("fusion", FUSIONS)
    def test_statevector_evolve(self, seed, fusion):
        qc = _random(5, 40, seed)
        legacy = Statevector(5).evolve(qc, plan=False)._tensor
        fused = Statevector(5).evolve(qc, fuse=fusion)._tensor
        if fusion == "none":
            assert np.array_equal(fused, legacy)
        np.testing.assert_allclose(fused, legacy, atol=1e-12)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("fusion", FUSIONS)
    def test_terminal_distribution(self, seed, fusion):
        qc = _random(4, 30, seed)
        legacy, measured_legacy = terminal_distribution(qc, plan=False)
        fused, measured = terminal_distribution(qc, fuse=fusion)
        assert measured == measured_legacy
        if fusion == "none":
            assert np.array_equal(fused, legacy)
        np.testing.assert_allclose(fused, legacy, atol=1e-12)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("fusion", FUSIONS)
    def test_unitary(self, seed, fusion):
        qc = _random(4, 30, seed)
        legacy = circuit_unitary(qc, plan=False)
        fused = circuit_unitary(qc, fuse=fusion)
        if fusion == "none":
            assert np.array_equal(fused, legacy)
        np.testing.assert_allclose(fused, legacy, atol=1e-12)

    @pytest.mark.parametrize("fusion", FUSIONS)
    def test_density_noiseless(self, fusion):
        qc = _random(4, 30, seed=5)
        legacy = DensityMatrixSimulator(plan=False).evolve(qc).to_matrix()
        fused = DensityMatrixSimulator(fuse=fusion).evolve(qc).to_matrix()
        if fusion == "none":
            assert np.array_equal(fused, legacy)
        np.testing.assert_allclose(fused, legacy, atol=1e-12)

    @pytest.mark.parametrize("fusion", FUSIONS)
    def test_batched_noiseless_counts(self, fusion):
        qc = _mixed_circuit()
        legacy = BatchedTrajectorySimulator(seed=9, plan=False).run(qc, 600)
        fused = BatchedTrajectorySimulator(seed=9, fuse=fusion).run(qc, 600)
        assert dict(fused) == dict(legacy)

    def test_mixed_circuit_all_engines_through_run(self):
        qc = _mixed_circuit()
        for method in ("statevector", "batched", "trajectory", "density"):
            legacy = run(qc, 500, method=method, seed=13, plan=False)
            for fusion in FUSIONS:
                fused = run(qc, 500, method=method, seed=13, fuse=fusion)
                assert dict(fused) == dict(legacy), (method, fusion)

    def test_large_batch_gemm_route(self):
        # force the GEMM fast paths (batch.size >= 2^16)
        qc = _random(6, 40, seed=7)
        sim_a = BatchedTrajectorySimulator(seed=21, plan=False)
        sim_b = BatchedTrajectorySimulator(seed=21, fuse="none")
        assert dict(sim_a.run(qc, 2048)) == dict(sim_b.run(qc, 2048))


class TestNoisyAnchoring:
    """Noisy runs execute the per-instruction stream: bit-identical."""

    def test_batched_noisy_bit_identical(self):
        qc = _mixed_circuit()
        model = _noise()
        for fusion in FUSIONS:
            a = BatchedTrajectorySimulator(model, seed=5, fuse=fusion).run(
                qc, 400
            )
            b = BatchedTrajectorySimulator(model, seed=5, plan=False).run(
                qc, 400
            )
            assert dict(a) == dict(b)

    def test_density_noisy_bit_identical(self):
        qc = _random(3, 25, seed=2)
        model = _noise()
        a = DensityMatrixSimulator(model).evolve(qc).to_matrix()
        b = DensityMatrixSimulator(model, plan=False).evolve(qc).to_matrix()
        assert np.array_equal(a, b)

    def test_noise_on_identity_gates_still_fires(self):
        # the model binds a channel to 'i'; the traced stream must keep
        # the (dropped-from-fusion) identity gate as a noise anchor
        qc = QuantumCircuit(1)
        qc.h(0).i(0).i(0)
        model = NoiseModel("id-noise")
        model.add_all_qubit_quantum_error(depolarizing(0.3), ["id"])
        a = DensityMatrixSimulator(model).evolve(qc).to_matrix()
        b = DensityMatrixSimulator(model, plan=False).evolve(qc).to_matrix()
        assert np.array_equal(a, b)
        assert a[0, 1] != pytest.approx(0.5)  # the noise clearly acted


class TestPlanCache:
    def test_hit_miss_counting(self):
        cache = PlanCache(maxsize=8)
        qc = _random(3, 20, seed=1)
        first = cache.plan_for(qc)
        second = cache.plan_for(qc)
        assert first is second  # identity copy policy: plans are shared
        stats = cache.stats()
        assert (stats.misses, stats.hits) == (1, 1)

    def test_structural_keying_across_equal_circuits(self):
        # equal structure, distinct objects -> one trace
        cache = PlanCache(maxsize=8)
        cache.plan_for(_mixed_circuit())
        cache.plan_for(_mixed_circuit())
        assert cache.stats().misses == 1

    def test_fusion_levels_are_distinct_keys(self):
        cache = PlanCache(maxsize=8)
        qc = _random(3, 20, seed=1)
        for fusion in FUSIONS:
            cache.plan_for(qc, fusion)
        assert cache.stats().misses == 3

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        circuits = [_random(3, 10, seed=s) for s in range(3)]
        for qc in circuits:
            cache.plan_for(qc)
        assert len(cache) == 2
        cache.plan_for(circuits[0])  # evicted -> re-trace
        assert cache.stats().misses == 4

    def test_disabled_cache_builds_fresh(self):
        cache = PlanCache(maxsize=8)
        cache.enabled = False
        qc = _random(3, 10, seed=0)
        assert cache.plan_for(qc) is not cache.plan_for(qc)
        assert len(cache) == 0

    def test_thread_safety(self):
        cache = PlanCache(maxsize=32)
        circuits = [_random(4, 30, seed=s) for s in range(4)]
        errors = []

        def worker():
            try:
                for _ in range(20):
                    for qc in circuits:
                        plan = cache.plan_for(qc)
                        batch = np.zeros((1, 2, 2, 2, 2), dtype=complex)
                        batch[(0,) * 5] = 1.0
                        out = plan.execute(batch)
                        assert abs(np.linalg.norm(out) - 1.0) < 1e-9
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        # every lookup after the (possibly racy) first build is a hit
        assert stats.hits + stats.misses == 8 * 20 * 4
        assert stats.misses <= 8 * len(circuits)

    def test_global_cache_reused_across_engines(self):
        cache = get_plan_cache()
        cache.clear()
        qc = _mixed_circuit()
        run(qc, 100, method="statevector", seed=0)
        before = cache.stats().misses
        run(qc, 100, method="batched", seed=0)
        run(qc, 100, method="trajectory", seed=0)
        after = cache.stats()
        assert after.misses == before  # zero re-traces on cache hits
        assert after.hits >= 2

    def test_compiled_streams_cached_on_plan(self):
        plan = get_plan(_random(3, 20, seed=4))
        a = plan.compiled(np.complex128)
        b = plan.compiled(np.complex128)
        assert a is b
        c = plan.compiled(np.complex64)
        assert c is not a


class TestPaperBenchmarks:
    """PR-3-style re-verification: pinned-seed counts are unchanged."""

    @pytest.mark.parametrize("name", ["4mod5", "4gt11", "rd53"])
    def test_benchmark_counts_identical(self, name):
        qc = benchmark_circuit(name).copy().measure_all()
        legacy = run(qc, 1000, seed=1234, plan=False)
        fused = run(qc, 1000, seed=1234)
        assert dict(fused) == dict(legacy)

    def test_expected_output_dominates(self):
        from repro.revlib.benchmarks import load_benchmark

        record = load_benchmark("4mod5")
        qc = record.circuit().copy().measure_all()
        counts = run(qc, 200, seed=7)
        assert counts.most_frequent() == record.expected_output()


class TestApiKnobs:
    def test_invalid_fuse_rejected(self):
        with pytest.raises(ValueError, match="fusion"):
            run(_mixed_circuit(), 10, fuse="max")

    def test_legacy_signature_engines_still_dispatch(self):
        # engines registered before the plan tier existed take no
        # plan/fuse kwargs; default dispatch must not pass them
        class LegacyEngine:
            name = "legacy-sig"

            def supports(self, circuit, noise_model=None):
                return True

            def run(self, circuit, shots, *, noise_model=None,
                    seed=None, dtype=None):
                from repro.simulator.counts import Counts

                return Counts({"0": shots}, shots=shots)

        register_engine(LegacyEngine)
        try:
            counts = run(QuantumCircuit(1), 10, method="legacy-sig")
            assert dict(counts) == {"0": 10}
        finally:
            unregister_engine("legacy-sig")


class TestKernelSatellites:
    def test_identity_memo_frozen_matrix(self):
        eye = np.eye(2, dtype=complex)
        eye.setflags(write=False)
        assert matrix_is_identity(eye)
        assert matrix_is_identity(eye)  # memo path

    def test_identity_memo_never_caches_writable(self):
        mat = np.eye(2, dtype=complex)
        assert matrix_is_identity(mat)
        mat[0, 0] = 2.0  # mutate in place: verdict must not be stale
        assert not matrix_is_identity(mat)

    def test_sample_counts_skips_renorm_but_handles_drift(self):
        state = Statevector(2)
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        state.evolve(qc)
        rng = np.random.default_rng(3)
        counts = state.sample_counts(500, rng)
        assert sum(counts.values()) == 500
        assert set(counts) <= {"00", "11"}
        # non-unitary evolution (Kraus branch) drifts the norm; the
        # tolerance gate must still renormalise
        state.apply_matrix(np.array([[0.7, 0.0], [0.0, 0.7]]), [0])
        drifted = state.sample_counts(500, np.random.default_rng(3))
        assert sum(drifted.values()) == 500
