"""Tests for truth tables, MMD synthesis and MCX decompositions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.circuits.random_circuits import random_reversible_circuit
from repro.simulator import circuit_unitary, equal_up_to_global_phase
from repro.synth import (
    TruthTable,
    ccx_decomposition,
    expand_mcx_gates,
    mcx_decomposition,
    mcz_parity_network,
    simulate_reversible,
    synthesize_mmd,
)


class TestTruthTable:
    def test_identity(self):
        table = TruthTable.identity(3)
        assert table.is_identity()
        assert table.num_lines == 3

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError):
            TruthTable([0, 0, 1, 1])

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            TruthTable([0, 1, 2])

    def test_inverse(self):
        table = TruthTable([2, 0, 3, 1])
        inv = table.inverse()
        assert table.compose(inv).is_identity()

    def test_compose_order(self):
        f = TruthTable([1, 0, 2, 3])  # flip bit0 when bit1=0
        g = TruthTable([2, 3, 0, 1])  # flip bit1
        assert f.compose(g)(0) == g(f(0))

    def test_from_function(self):
        table = TruthTable.from_function(lambda x: x ^ 0b11, 2)
        assert table(0) == 3

    def test_hamming_cost_and_fixed_points(self):
        table = TruthTable([1, 0, 2, 3])
        assert table.fixed_points() == 2
        assert table.hamming_cost() == 2

    def test_output_bit(self):
        table = TruthTable([2, 3, 0, 1])
        assert table.output_bit(0, 1) == 1
        assert table.output_bit(0, 0) == 0


class TestSimulateReversible:
    def test_x_gate(self):
        qc = QuantumCircuit(2)
        qc.x(1)
        assert simulate_reversible(qc).table == [2, 3, 0, 1]

    def test_cx_gate(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        # |q1 q0>: 00->00, 01->11, 10->10, 11->01
        assert simulate_reversible(qc).table == [0, 3, 2, 1]

    def test_mcx(self):
        qc = QuantumCircuit(4)
        qc.mcx([0, 1, 2], 3)
        table = simulate_reversible(qc)
        assert table(0b0111) == 0b1111
        assert table(0b0011) == 0b0011

    def test_non_reversible_gate_rejected(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        with pytest.raises(ValueError):
            simulate_reversible(qc)

    def test_matches_statevector(self):
        qc = random_reversible_circuit(3, 10, seed=4)
        table = simulate_reversible(qc)
        unitary = circuit_unitary(qc)
        for x in range(8):
            expected_col = np.zeros(8)
            expected_col[table(x)] = 1.0
            assert np.allclose(unitary[:, x], expected_col)


class TestMMD:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000), lines=st.integers(2, 4))
    def test_random_permutations_synthesise(self, seed, lines):
        """Property: MMD realises arbitrary permutations exactly."""
        rng = np.random.default_rng(seed)
        table = TruthTable(rng.permutation(2 ** lines).tolist())
        circuit = synthesize_mmd(table)
        assert simulate_reversible(circuit) == table

    def test_identity_needs_no_gates(self):
        assert synthesize_mmd(TruthTable.identity(3)).size() == 0

    def test_not_function(self):
        table = TruthTable.from_function(lambda x: x ^ 1, 2)
        circuit = synthesize_mmd(table)
        assert simulate_reversible(circuit) == table
        assert circuit.size() == 1

    def test_half_adder_synthesis(self):
        """Synthesise (a, b, s, c) -> (a, b, s^a^b, c^(a&b))."""
        def half_adder(x):
            a, b = x & 1, (x >> 1) & 1
            return x ^ ((a ^ b) << 2) ^ ((a & b) << 3)

        table = TruthTable.from_function(half_adder, 4)
        circuit = synthesize_mmd(table)
        assert simulate_reversible(circuit) == table


class TestDecompositions:
    def test_ccx_decomposition_matrix(self):
        qc = QuantumCircuit(3)
        qc.extend(ccx_decomposition(0, 1, 2))
        ref = QuantumCircuit(3)
        ref.ccx(0, 1, 2)
        assert equal_up_to_global_phase(
            circuit_unitary(ref), circuit_unitary(qc)
        )

    @pytest.mark.parametrize("controls,total", [(3, 5), (4, 6), (5, 8)])
    def test_mcx_with_dirty_ancillas(self, controls, total):
        free = list(range(controls + 1, total))
        qc = QuantumCircuit(total)
        qc.extend(mcx_decomposition(list(range(controls)), controls, free))
        ref = QuantumCircuit(total)
        ref.mcx(list(range(controls)), controls)
        assert equal_up_to_global_phase(
            circuit_unitary(ref), circuit_unitary(qc)
        )
        assert all(len(i.qubits) <= 3 for i in qc.gates())

    @pytest.mark.parametrize("controls", [2, 3, 4])
    def test_mcx_without_ancillas(self, controls):
        total = controls + 1
        qc = QuantumCircuit(total)
        qc.extend(mcx_decomposition(list(range(controls)), controls, []))
        ref = QuantumCircuit(total)
        ref.mcx(list(range(controls)), controls)
        assert equal_up_to_global_phase(
            circuit_unitary(ref), circuit_unitary(qc)
        )

    def test_mcz_parity_network_matrix(self):
        qc = QuantumCircuit(3)
        qc.extend(mcz_parity_network([0, 1, 2]))
        expected = np.eye(8, dtype=complex)
        expected[7, 7] = -1
        assert equal_up_to_global_phase(circuit_unitary(qc), expected)

    def test_mcx_trivial_arities(self):
        assert mcx_decomposition([], 0, [])[0].name == "x"
        assert mcx_decomposition([0], 1, [])[0].name == "cx"
        assert mcx_decomposition([0, 1], 2, [])[0].name == "ccx"

    def test_expand_preserves_function(self):
        qc = QuantumCircuit(6)
        qc.x(0).mcx([0, 1, 2, 3], 4).cx(4, 5).mcx([1, 2, 3, 4], 5)
        expanded = expand_mcx_gates(qc)
        assert simulate_reversible(expanded) == simulate_reversible(qc)
        assert all(
            not inst.name.startswith("mcx") for inst in expanded.gates()
        )

    def test_expand_leaves_small_gates(self):
        qc = QuantumCircuit(3)
        qc.ccx(0, 1, 2).cx(0, 1)
        expanded = expand_mcx_gates(qc)
        assert expanded == qc
