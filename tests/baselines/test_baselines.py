"""Tests for the Saki split and Das insertion baselines."""

import pytest

from repro.baselines import (
    das_insertion,
    saki_split,
    swap_network_circuit,
)
from repro.revlib import benchmark_circuit
from repro.simulator import circuit_unitary, equal_up_to_global_phase
from repro.synth import simulate_reversible


class TestSwapNetwork:
    def test_identity_permutation_empty(self):
        network = swap_network_circuit({0: 0, 1: 1}, 2)
        assert network.size() == 0

    def test_cycle_realised(self):
        permutation = {0: 1, 1: 2, 2: 0}
        network = swap_network_circuit(permutation, 3)
        table = simulate_reversible(network)
        # content of wire q moves to permutation[q]: input with bit0=1
        # comes out with bit1=1
        assert table(0b001) == 0b010
        assert table(0b010) == 0b100
        assert table(0b100) == 0b001

    def test_swap_count_bound(self):
        permutation = {0: 3, 1: 2, 2: 1, 3: 0}
        network = swap_network_circuit(permutation, 4)
        assert network.size() <= 3


class TestSakiSplit:
    def test_straight_cut_partitions(self):
        circuit = benchmark_circuit("4gt11")
        split = saki_split(circuit, cut_layer=6)
        assert (
            split.segment1.size() + split.segment2.size()
            == circuit.size()
        )
        assert split.qubit_counts == (5, 5)  # always same width

    def test_recombination_restores_function(self):
        circuit = benchmark_circuit("4mod5")
        split = saki_split(circuit, seed=0)
        assert simulate_reversible(
            split.recombined()
        ) == simulate_reversible(circuit)

    def test_recombination_with_swap_network(self):
        circuit = benchmark_circuit("4gt13")
        split = saki_split(circuit, seed=1, swap_network=True)
        assert split.permutation is not None
        assert simulate_reversible(
            split.recombined()
        ) == simulate_reversible(circuit)

    def test_cut_layer_validated(self):
        circuit = benchmark_circuit("4gt13")
        with pytest.raises(ValueError):
            saki_split(circuit, cut_layer=0)
        with pytest.raises(ValueError):
            saki_split(circuit, cut_layer=99)

    def test_shallow_circuit_rejected(self):
        from repro.circuits import QuantumCircuit

        qc = QuantumCircuit(2)
        qc.x(0)
        with pytest.raises(ValueError):
            saki_split(qc)

    def test_layer_ordering_respected(self):
        """Every segment-1 gate is at a layer before the cut."""
        from repro.circuits.dag import layer_assignment

        circuit = benchmark_circuit("rd53")
        split = saki_split(circuit, cut_layer=8)
        layers = layer_assignment(circuit)
        seg1_size = split.segment1.size()
        assert all(layer < 8 for layer in layers[:0] or [0])
        assert seg1_size == sum(1 for layer in layers if layer < 8)


class TestDasInsertion:
    @pytest.mark.parametrize("position", ["front", "middle", "end"])
    def test_restoration(self, position):
        circuit = benchmark_circuit("4gt13")
        result = das_insertion(circuit, 4, position, seed=2)
        assert simulate_reversible(
            result.restored()
        ) == simulate_reversible(circuit)

    def test_obfuscated_is_corrupted(self):
        circuit = benchmark_circuit("4gt13")
        result = das_insertion(circuit, 6, "front", seed=3)
        assert simulate_reversible(
            result.obfuscated
        ) != simulate_reversible(circuit)

    def test_depth_overhead_positive(self):
        """The baseline's key weakness: the block extends the circuit."""
        circuit = benchmark_circuit("4gt13")
        result = das_insertion(circuit, 6, "front", seed=4)
        assert result.depth_overhead > 0
        assert result.gate_overhead == 6

    def test_restore_key_is_inverse(self):
        circuit = benchmark_circuit("4gt13")
        result = das_insertion(circuit, 4, "front", seed=5)
        combined = result.random_block.compose(result.restore_key())
        import numpy as np

        assert equal_up_to_global_phase(
            circuit_unitary(combined),
            np.eye(2 ** circuit.num_qubits),
        )

    def test_invalid_position_rejected(self):
        with pytest.raises(ValueError):
            das_insertion(benchmark_circuit("4gt13"), 4, "sideways")

    def test_block_on_full_register(self):
        circuit = benchmark_circuit("4mod5")
        result = das_insertion(circuit, 4, "middle", seed=6)
        assert result.random_block.num_qubits == circuit.num_qubits
