"""Tests for the .real format and the benchmark registry."""

import pytest

from repro.circuits import QuantumCircuit
from repro.revlib import (
    BENCHMARKS,
    RealFormatError,
    TABLE1_PAPER_VALUES,
    benchmark_circuit,
    benchmark_names,
    load_benchmark,
    paper_suite,
    parse_real,
    write_real,
)
from repro.synth import simulate_reversible


class TestRealFormat:
    def test_parse_basic(self):
        circuit = parse_real(
            ".numvars 3\n.variables a b c\n.begin\nt1 a\nt2 a b\n"
            "t3 a b c\n.end\n"
        )
        assert circuit.num_qubits == 3
        assert [inst.name for inst in circuit] == ["x", "cx", "ccx"]

    def test_parse_mct(self):
        circuit = parse_real(
            ".numvars 5\n.variables a b c d e\n.begin\nt5 a b c d e\n.end"
        )
        assert circuit[0].name == "mcx4"

    def test_parse_fredkin(self):
        circuit = parse_real(
            ".numvars 3\n.variables a b c\n.begin\nf3 a b c\n.end"
        )
        assert circuit[0].name == "cswap"

    def test_comments_and_directives_skipped(self):
        circuit = parse_real(
            "# a comment\n.version 2.0\n.numvars 2\n.variables a b\n"
            ".inputs a b\n.outputs a b\n.constants --\n.garbage --\n"
            ".begin\nt2 a b # inline comment\n.end\n"
        )
        assert circuit.size() == 1

    def test_numvars_without_names(self):
        circuit = parse_real(".numvars 2\n.begin\nt1 x0\nt2 x0 x1\n.end")
        assert circuit.num_qubits == 2

    def test_missing_header_rejected(self):
        with pytest.raises(RealFormatError):
            parse_real(".begin\nt1 a\n.end")

    def test_unknown_variable_rejected(self):
        with pytest.raises(RealFormatError):
            parse_real(".numvars 1\n.variables a\n.begin\nt1 z\n.end")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(RealFormatError):
            parse_real(".numvars 2\n.variables a b\n.begin\nt3 a b\n.end")

    def test_unsupported_gate_rejected(self):
        with pytest.raises(RealFormatError):
            parse_real(".numvars 1\n.variables a\n.begin\nv a\n.end")

    def test_roundtrip(self):
        circuit = benchmark_circuit("rd53")
        text = write_real(circuit)
        assert simulate_reversible(parse_real(text)) == simulate_reversible(
            circuit
        )

    def test_write_rejects_non_toffoli(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        with pytest.raises(RealFormatError):
            write_real(qc)

    def test_write_variable_mismatch(self):
        with pytest.raises(RealFormatError):
            write_real(QuantumCircuit(2), variables=["a"])


class TestBenchmarks:
    def test_registry_contents(self):
        names = benchmark_names(table1_only=True)
        assert names == [
            "mini_alu", "4mod5", "one_bit_adder", "4gt11", "4gt13",
            "rd53", "rd73", "rd84",
        ]
        assert len(benchmark_names()) >= 10

    @pytest.mark.parametrize("name", [
        "mini_alu", "4mod5", "one_bit_adder", "4gt11", "4gt13",
        "rd53", "rd73", "rd84",
    ])
    def test_counts_match_table1(self, name):
        """Reconstructions match Table I qubit/gate/depth exactly."""
        record = load_benchmark(name)
        circuit = record.circuit()
        assert circuit.num_qubits == record.num_qubits
        assert circuit.size() == record.gate_count
        assert circuit.depth() == record.depth
        paper = TABLE1_PAPER_VALUES[name]
        assert circuit.depth() == paper["depth"]
        assert circuit.size() == paper["gates"]

    def test_qubit_sizes_span_paper_range(self):
        sizes = {r.num_qubits for r in paper_suite()}
        assert sizes == {4, 5, 7, 10, 12}

    def test_expected_outputs_deterministic(self):
        for record in paper_suite():
            expected = record.expected_output()
            assert len(expected) == record.num_qubits
            assert set(expected) <= {"0", "1"}
            # recompute through the truth table directly
            table = simulate_reversible(record.circuit())
            assert int(expected, 2) == table(0)

    def test_output_bits_subset(self):
        record = load_benchmark("rd84")
        assert record.output_qubits == (8, 9, 10, 11)
        assert len(record.expected_output_bits()) == 4

    def test_expected_output_bits_consistent(self):
        record = load_benchmark("rd53")
        full = record.expected_output()[::-1]
        bits = record.expected_output_bits()[::-1]
        for position, qubit in enumerate(sorted(record.output_qubits)):
            assert bits[position] == full[qubit]

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_benchmark("does_not_exist")

    def test_all_circuits_are_toffoli_networks(self):
        for name in benchmark_names():
            circuit = benchmark_circuit(name)
            for inst in circuit.gates():
                assert inst.name in ("x", "cx", "ccx") or inst.name.startswith(
                    "mcx"
                )

    def test_gate_limit_range_matches_paper_claim(self):
        """Paper: benchmarks have 4..32 gates on 4..12 qubits."""
        for record in paper_suite():
            assert 4 <= record.gate_count <= 32
            assert 4 <= record.num_qubits <= 12
