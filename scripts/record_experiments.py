#!/usr/bin/env python3
"""Run the full experiment suite and record results for EXPERIMENTS.md.

Iteration counts are scaled by circuit width (the 10–12 qubit circuits
cost minutes per iteration on a laptop-class machine); the paper uses
20 iterations everywhere.  Shot count follows the paper (1000).

Writes ``results/experiments.json`` plus the rendered text tables.
"""

import json
import os
import sys
import time

from repro.experiments.ablation_insertion import render_ablation, run_ablation
from repro.experiments.attack_complexity import (
    demo_bruteforce_attack,
    generate_complexity_table,
    render_complexity_table,
)
from repro.experiments.figure4 import generate_figure4, render_figure4
from repro.experiments.runner import run_benchmark
from repro.experiments.table1 import render_table1
from repro.revlib import load_benchmark

ITERATIONS = {
    "mini_alu": 20, "4mod5": 20, "one_bit_adder": 20, "4gt11": 20,
    "4gt13": 20, "rd53": 10, "rd73": 3, "rd84": 2,
}
SHOTS = {"rd84": 500}


def main() -> None:
    os.makedirs("results", exist_ok=True)
    results = {}
    t_start = time.time()
    for name, iterations in ITERATIONS.items():
        record = load_benchmark(name)
        t0 = time.time()
        aggregate = run_benchmark(
            record,
            iterations=iterations,
            shots=SHOTS.get(name, 1000),
            seed=2025,
        )
        results[name] = aggregate
        print(
            f"[{time.time() - t_start:7.1f}s] {name}: "
            f"{iterations} iterations in {time.time() - t0:.1f}s",
            flush=True,
        )

    table1_text = render_table1(results)
    figure4 = generate_figure4(results=results)
    figure4_text = render_figure4(figure4)
    complexity_rows = generate_complexity_table(k=2)
    complexity_text = render_complexity_table(complexity_rows)
    demo = demo_bruteforce_attack("4gt13", seed=3)
    ablation_rows = run_ablation(iterations=10, seed=7)
    ablation_text = render_ablation(ablation_rows)

    payload = {
        "iterations": ITERATIONS,
        "table1": {
            name: {
                "depth": agg.depth,
                "depth_obfuscated": agg.depth_obfuscated,
                "gates": agg.gates,
                "gates_obfuscated": agg.gates_obfuscated,
                "gate_change_pct": agg.gate_change_pct,
                "accuracy": agg.accuracy,
                "accuracy_restored": agg.accuracy_restored,
                "accuracy_change_pct": agg.accuracy_change_pct,
            }
            for name, agg in results.items()
        },
        "figure4": {
            name: {
                kind: {
                    "median": series[kind].median,
                    "q1": series[kind].q1,
                    "q3": series[kind].q3,
                    "min": series[kind].minimum,
                    "max": series[kind].maximum,
                }
                for kind in ("obfuscated", "restored")
            }
            for name, series in figure4.items()
        },
        "bruteforce_demo": {
            "benchmark": demo.benchmark,
            "candidates": demo.candidates,
            "matches": demo.matches,
        },
    }
    with open("results/experiments.json", "w") as fh:
        json.dump(payload, fh, indent=2)
    for filename, text in [
        ("results/table1.txt", table1_text),
        ("results/figure4.txt", figure4_text),
        ("results/attack_complexity.txt", complexity_text),
        ("results/ablation.txt", ablation_text),
    ]:
        with open(filename, "w") as fh:
            fh.write(text + "\n")
    print("\n" + table1_text)
    print("\n" + figure4_text)
    print(f"\ntotal: {time.time() - t_start:.1f}s")


if __name__ == "__main__":
    sys.exit(main())
