#!/usr/bin/env python3
"""DEPRECATED: run the full experiment suite and record results.

This script predates the unified experiment framework and is kept as a
thin compatibility shim.  Use the framework CLI instead::

    python -m repro experiment run table1  --jobs 4
    python -m repro experiment run figure4 --jobs 4
    python -m repro experiment run attack_complexity
    python -m repro experiment run ablation_insertion
    python -m repro experiment report table1

which adds per-cell JSONL checkpoints under ``results/``, exact resume
after interruption (``repro experiment resume ...``) and ``--shard
i/n`` splitting — this script recomputes everything from scratch on
every invocation.

The shim still emits the historical artifacts
(``results/experiments.json`` plus rendered text tables) so existing
tooling keeps working, but now executes through the framework: the
per-benchmark iteration scaling of the original script (the 10–12
qubit circuits cost minutes per iteration) is expressed as one
framework run per benchmark, each independently checkpointed and
resumable.  One run per benchmark also preserves the original
script's seeding exactly: every benchmark's iterations draw from seed
positions 0..N-1 of its own ``SeedSequence(2025)`` grid, just like
the historical ``run_benchmark`` calls, so the recorded numbers are
bit-identical to the pre-framework script.
"""

import argparse
import json
import os
import sys
import time
import warnings

from repro.experiments import (
    ResultStore,
    render_ablation,
    render_complexity_table,
    render_figure4,
    render_table1,
    run_experiment,
)
from repro.experiments.figure4 import generate_figure4

# iteration counts scaled by circuit width; the paper uses 20 everywhere
ITERATIONS = {
    "mini_alu": 20, "4mod5": 20, "one_bit_adder": 20, "4gt11": 20,
    "4gt13": 20, "rd53": 10, "rd73": 3, "rd84": 2,
}
SHOTS = {"rd84": 500}


def main() -> None:
    warnings.warn(
        "scripts/record_experiments.py is deprecated; use "
        "`python -m repro experiment run <name>` (see README)",
        DeprecationWarning,
        stacklevel=1,
    )
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--store", default="results")
    args = parser.parse_args()

    os.makedirs("results", exist_ok=True)
    store = ResultStore(args.store)
    results = {}
    t_start = time.time()
    # one framework run per benchmark — the per-benchmark grid seeds
    # match the historical run_benchmark(..., seed=2025) calls, and
    # every run checkpoints under results/ and resumes for free if
    # this script is interrupted and re-invoked
    for name, iterations in ITERATIONS.items():
        t0 = time.time()
        report = run_experiment(
            "table1",
            {
                "iterations": iterations,
                "shots": SHOTS.get(name, 1000),
                "seed": 2025,
                "benchmarks": [name],
            },
            jobs=args.jobs,
            resume=True,
            store=store,
        )
        results[name] = report.result[name]
        print(
            f"[{time.time() - t_start:7.1f}s] {name}: "
            f"{iterations} iterations in {time.time() - t0:.1f}s "
            f"({report.reused} cell(s) from checkpoint)",
            flush=True,
        )

    table1_text = render_table1(results)
    figure4 = generate_figure4(results=results)
    figure4_text = render_figure4(figure4)
    attack = run_experiment("attack_complexity", resume=True, store=store)
    complexity_text = render_complexity_table(attack.result["rows"])
    demo = attack.result["demo"]
    ablation = run_experiment(
        "ablation_insertion", {"iterations": 10, "seed": 7},
        jobs=args.jobs, resume=True, store=store,
    )
    ablation_text = render_ablation(ablation.result)

    payload = {
        "iterations": ITERATIONS,
        "table1": {
            name: {
                "depth": agg.depth,
                "depth_obfuscated": agg.depth_obfuscated,
                "gates": agg.gates,
                "gates_obfuscated": agg.gates_obfuscated,
                "gate_change_pct": agg.gate_change_pct,
                "accuracy": agg.accuracy,
                "accuracy_restored": agg.accuracy_restored,
                "accuracy_change_pct": agg.accuracy_change_pct,
            }
            for name, agg in results.items()
        },
        "figure4": {
            name: {
                kind: {
                    "median": series[kind].median,
                    "q1": series[kind].q1,
                    "q3": series[kind].q3,
                    "min": series[kind].minimum,
                    "max": series[kind].maximum,
                }
                for kind in ("obfuscated", "restored")
            }
            for name, series in figure4.items()
        },
        "bruteforce_demo": {
            "benchmark": demo.benchmark,
            "candidates": demo.candidates,
            "matches": demo.matches,
        },
    }
    with open("results/experiments.json", "w") as fh:
        json.dump(payload, fh, indent=2)
    for filename, text in [
        ("results/table1.txt", table1_text),
        ("results/figure4.txt", figure4_text),
        ("results/attack_complexity.txt", complexity_text),
        ("results/ablation.txt", ablation_text),
    ]:
        with open(filename, "w") as fh:
            fh.write(text + "\n")
    print("\n" + table1_text)
    print("\n" + figure4_text)
    print(f"\ntotal: {time.time() - t_start:.1f}s")


if __name__ == "__main__":
    sys.exit(main())
